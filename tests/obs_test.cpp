// The observability layer's contract: instrument semantics (counters,
// gauges, timers, histograms), exact sums under concurrent mutation,
// deterministic registry merges, trace-ring wrap accounting, span
// hierarchy/export semantics, the sampling profiler's source registry,
// and a JSON model whose writer and parser round-trip each other.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace dp::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON model

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(JsonValue::parse("null").kind(), JsonValue::Kind::Null);
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(JsonValue::parse("\"a\\nb\\\"c\\\\\"").as_string(), "a\nb\"c\\");
}

TEST(Json, ObjectPreservesInsertionOrderAndRoundTrips) {
  JsonValue v = JsonValue::object();
  v["zebra"] = 1;
  v["alpha"] = "two";
  v["nested"]["deep"] = true;
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  v["list"] = std::move(arr);

  const std::string text = v.dump();
  const JsonValue back = JsonValue::parse(text);
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.members()[0].first, "zebra");  // order survives the trip
  EXPECT_EQ(back.members()[1].first, "alpha");
  EXPECT_EQ(back.at("zebra").as_int(), 1);
  EXPECT_TRUE(back.at("nested").at("deep").as_bool());
  ASSERT_EQ(back.at("list").size(), 3u);
  EXPECT_DOUBLE_EQ(back.at("list").at(1).as_double(), 2.5);
  // Idempotent: dump(parse(dump(v))) == dump(v).
  EXPECT_EQ(back.dump(), text);
}

TEST(Json, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(JsonValue::parse("'single'"), JsonError);
  EXPECT_THROW(JsonValue::parse("nul"), JsonError);
}

// ---- protocol-facing edge cases ----------------------------------------
// The serve protocol feeds network frames straight into parse(); these
// pin exactly the shapes a hostile or broken peer can produce.

TEST(Json, DeepNestingIsBoundedNotAStackOverflow) {
  // Within the bound: parses fine and round-trips.
  const int ok_depth = 64;
  std::string ok(static_cast<std::size_t>(ok_depth), '[');
  ok += "1";
  ok.append(static_cast<std::size_t>(ok_depth), ']');
  const JsonValue v = JsonValue::parse(ok);
  EXPECT_EQ(JsonValue::parse(v.dump()).dump(), v.dump());

  // Far past the bound: a clean JsonError naming the problem, not UB.
  std::string hostile(100000, '[');
  try {
    JsonValue::parse(hostile);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("nested too deeply"),
              std::string::npos);
  }
  // Same bound for objects.
  std::string hostile_obj;
  for (int i = 0; i < 100000; ++i) hostile_obj += "{\"k\":";
  EXPECT_THROW(JsonValue::parse(hostile_obj), JsonError);
}

TEST(Json, EscapedUnicodeRoundTrips) {
  // \uXXXX escapes decode to UTF-8; the writer re-escapes only control
  // characters, so a parse→dump→parse cycle is stable.
  const JsonValue v = JsonValue::parse("\"\\u0041\\u00e9\\u20ac\\u0007\"");
  EXPECT_EQ(v.as_string(),
            "A\xC3\xA9\xE2\x82\xAC\x07");  // A, é, €, BEL
  const JsonValue back = JsonValue::parse(v.dump());
  EXPECT_EQ(back.as_string(), v.as_string());
  // Escapes inside object KEYS round-trip too (the protocol hashes on
  // exact key bytes).
  const JsonValue obj = JsonValue::parse("{\"a\\u0062c\": 1}");
  EXPECT_TRUE(obj.contains("abc"));
  // Malformed escapes are rejected, not decoded permissively.
  EXPECT_THROW(JsonValue::parse("\"\\u12\""), JsonError);    // short
  EXPECT_THROW(JsonValue::parse("\"\\u12g4\""), JsonError);  // bad hex
  EXPECT_THROW(JsonValue::parse("\"\\x41\""), JsonError);    // bad escape
}

TEST(Json, RejectsNanAndInfLiterals) {
  for (const char* bad :
       {"NaN", "nan", "-NaN", "Infinity", "-Infinity", "inf", "-inf",
        "[1, NaN]", "{\"x\": Infinity}"}) {
    EXPECT_THROW(JsonValue::parse(bad), JsonError) << bad;
  }
  // The writer's stand-in for non-finite doubles is null -- pinned so
  // exported metrics can never smuggle a NaN into a consumer.
  JsonValue v = JsonValue::object();
  v["bad"] = std::numeric_limits<double>::quiet_NaN();
  v["worse"] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(v.dump(0), "{\"bad\":null,\"worse\":null}");
}

TEST(Json, TruncatedDocumentsThrowWithOffset) {
  for (const char* bad :
       {"{\"a\"", "{\"a\":", "{\"a\":1,", "[1, 2", "\"unterminated",
        "\"esc\\", "\"u\\u00", "tru", "12e", "-"}) {
    try {
      JsonValue::parse(bad);
      FAIL() << "expected JsonError for: " << bad;
    } catch (const JsonError& e) {
      // Every parse error carries the byte offset for debuggability.
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << bad;
    }
  }
}

TEST(Json, TypedAccessorsThrowOnKindMismatch) {
  const JsonValue v = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW(v.as_int(), JsonError);
  EXPECT_THROW(v.at("missing"), JsonError);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_TRUE(v.contains("a"));
}

TEST(Json, FileRoundTrip) {
  JsonValue v = JsonValue::object();
  v["x"] = 7;
  const std::string path = ::testing::TempDir() + "obs_test_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_json_file(path, v, &error)) << error;
  EXPECT_EQ(read_json_file(path).at("x").as_int(), 7);
  std::remove(path.c_str());
  // Unwritable path reports instead of throwing.
  EXPECT_FALSE(write_json_file("/nonexistent-dir/x.json", v, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Instruments

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry r;
  r.counter("c").add();
  r.counter("c").add(41);
  EXPECT_EQ(r.counter("c").value(), 42u);

  r.gauge("g").set(2.0);
  r.gauge("g").set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 2.0);
  r.gauge("g").set_max(5.0);  // higher: taken
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 5.0);
  r.gauge("g").add(0.5);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 5.5);
}

TEST(Metrics, TimerAggregates) {
  MetricsRegistry r;
  Timer& t = r.timer("t");
  t.record(0.25);
  t.record(0.75);
  t.record(0.5);
  const Timer::Snapshot s = t.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.total, 1.5);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 0.75);
}

TEST(Metrics, ScopedTimerRecordsOnceEvenWhenMoved) {
  MetricsRegistry r;
  {
    ScopedTimer a = r.scoped_timer("phase");
    ScopedTimer b = std::move(a);  // a is disarmed, b owns the record
    EXPECT_GE(b.stop(), 0.0);
    EXPECT_DOUBLE_EQ(b.stop(), 0.0);  // second stop is a no-op
  }
  EXPECT_EQ(r.timer("phase").snapshot().count, 1u);
}

TEST(Metrics, ScopedTimerMovedFromIsInertAndStopIsIdempotent) {
  MetricsRegistry r;
  ScopedTimer a = r.scoped_timer("phase");
  ScopedTimer b = std::move(a);
  // The moved-from timer must record nothing, however it's poked.
  EXPECT_DOUBLE_EQ(a.stop(), 0.0);
  EXPECT_DOUBLE_EQ(a.stop(), 0.0);
  EXPECT_EQ(r.timer("phase").snapshot().count, 0u);
  EXPECT_GE(b.stop(), 0.0);
  EXPECT_DOUBLE_EQ(b.stop(), 0.0);
  EXPECT_DOUBLE_EQ(b.stop(), 0.0);  // arbitrary further stops stay no-ops
  EXPECT_EQ(r.timer("phase").snapshot().count, 1u);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry r;
  Histogram& h = r.histogram("h", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(s.counts[0], 2u);      // 0.5, 1.0 (bucket is <= bound)
  EXPECT_EQ(s.counts[1], 1u);      // 1.5
  EXPECT_EQ(s.counts[2], 1u);      // 3.0
  EXPECT_EQ(s.counts[3], 1u);      // 100.0 overflow
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 106.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Bounds are honored on first creation only.
  EXPECT_EQ(r.histogram("h", {9.0}).snapshot().bounds.size(), 3u);
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter& c = r.counter("hits");
  Gauge& g = r.gauge("sum");
  Timer& t = r.timer("work");
  Histogram& h = r.histogram("dist", {0.25, 0.5, 0.75});
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1.0);
        t.record(0.001);
        h.observe(0.5);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(t.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Histogram::Snapshot hs = h.snapshot();
  EXPECT_EQ(hs.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hs.counts[1], hs.count);  // all samples land in (0.25, 0.5]
}

TEST(Metrics, MergeFromFoldsEverySection) {
  MetricsRegistry a, b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.counter("only_b").add(7);
  a.gauge("peak").set(3.0);
  b.gauge("peak").set(9.0);
  a.timer("t").record(1.0);
  b.timer("t").record(3.0);
  a.histogram("h", {1.0}).observe(0.5);
  b.histogram("h", {1.0}).observe(2.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 3u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("peak").value(), 9.0);  // gauges take the max
  const Timer::Snapshot t = a.timer("t").snapshot();
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.min, 1.0);
  EXPECT_DOUBLE_EQ(t.max, 3.0);
  const Histogram::Snapshot h = a.histogram("h", {1.0}).snapshot();
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
}

TEST(Metrics, ToJsonShapeIsSortedAndComplete) {
  MetricsRegistry r;
  r.counter("b.count").add(2);
  r.counter("a.count").add(1);
  r.gauge("nodes").set(12.5);
  r.timer("phase.x").record(0.5);
  r.histogram("lat", {1.0}).observe(0.25);
  r.histogram("lat", {1.0}).observe(5.0);

  const JsonValue j = r.to_json();
  ASSERT_TRUE(j.is_object());
  // Fixed section order...
  ASSERT_EQ(j.members().size(), 4u);
  EXPECT_EQ(j.members()[0].first, "counters");
  EXPECT_EQ(j.members()[1].first, "gauges");
  EXPECT_EQ(j.members()[2].first, "timers");
  EXPECT_EQ(j.members()[3].first, "histograms");
  // ...and sorted names inside each section.
  EXPECT_EQ(j.at("counters").members()[0].first, "a.count");
  EXPECT_EQ(j.at("counters").members()[1].first, "b.count");
  EXPECT_EQ(j.at("counters").at("b.count").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("nodes").as_double(), 12.5);

  const JsonValue& timer = j.at("timers").at("phase.x");
  EXPECT_EQ(timer.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(timer.at("total_s").as_double(), 0.5);
  EXPECT_TRUE(timer.contains("min_s"));
  EXPECT_TRUE(timer.contains("max_s"));

  const JsonValue& hist = j.at("histograms").at("lat");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  ASSERT_EQ(hist.at("buckets").size(), 2u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").at(0).at("le").as_double(), 1.0);
  EXPECT_EQ(hist.at("buckets").at(0).at("count").as_int(), 1);
  EXPECT_EQ(hist.at("buckets").at(1).at("le").as_string(), "inf");

  // The whole document survives a serialize/parse cycle.
  EXPECT_EQ(JsonValue::parse(j.dump()).dump(), j.dump());
}

TEST(Metrics, HistogramQuantilesAreExactNearestRank) {
  MetricsRegistry r;
  Histogram& h = r.histogram("lat", {5.0});
  // Insert out of order: quantiles must sort, not trust insertion order.
  for (double v : {7.0, 2.0, 10.0, 1.0, 5.0, 3.0, 9.0, 4.0, 8.0, 6.0}) {
    h.observe(v);
  }
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.samples.size(), 10u);
  EXPECT_DOUBLE_EQ(s.quantile(0.50), 5.0);  // rank ceil(5)-1 over 1..10
  EXPECT_DOUBLE_EQ(s.quantile(0.90), 9.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);

  const JsonValue j = r.to_json();
  const JsonValue& hist = j.at("histograms").at("lat");
  EXPECT_DOUBLE_EQ(hist.at("p50").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(hist.at("p90").as_double(), 9.0);
  EXPECT_DOUBLE_EQ(hist.at("p99").as_double(), 10.0);
}

TEST(Metrics, HistogramMergeConcatenatesSamplesSoQuantilesStayExact) {
  MetricsRegistry a, b;
  for (double v : {1.0, 2.0, 3.0}) a.histogram("h", {10.0}).observe(v);
  for (double v : {100.0, 200.0, 300.0}) {
    b.histogram("h", {10.0}).observe(v);
  }
  a.merge_from(b);
  const Histogram::Snapshot s = a.histogram("h", {10.0}).snapshot();
  ASSERT_EQ(s.samples.size(), 6u);
  // Union quantiles, not a bucket interpolation: the p50 of
  // {1,2,3,100,200,300} is 3, which no bucket-midpoint scheme produces
  // with one coarse bound at 10.
  EXPECT_DOUBLE_EQ(s.quantile(0.50), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 300.0);
}

// ---------------------------------------------------------------------------
// Trace ring

TEST(Trace, RecordsInOrderWithPayload) {
  TraceBuffer buf(8);
  buf.record(TraceKind::Phase, "build", 0);
  buf.record(TraceKind::Fault, "n1 sa0", 4, 2, 1, 3);
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::Phase);
  EXPECT_EQ(events[1].label, "n1 sa0");
  EXPECT_EQ(events[1].a, 4);
  EXPECT_EQ(events[1].b, 2);
  EXPECT_EQ(events[1].c, 1);
  EXPECT_EQ(events[1].d, 3);
  EXPECT_GE(events[1].t, events[0].t);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(Trace, WrapKeepsTailAndCountsDrops) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    buf.record(TraceKind::Mark, "e" + std::to_string(i), i);
  }
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first tail: e6 e7 e8 e9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].label,
              "e" + std::to_string(6 + i));
  }
}

TEST(Trace, ConcurrentRecordsLoseNothingButHistory) {
  TraceBuffer buf(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        buf.record(TraceKind::Mark, "m", i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(buf.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(buf.dropped(), buf.total_recorded() - buf.capacity());
  EXPECT_EQ(buf.snapshot().size(), buf.capacity());
  // Dense thread ids: every event's id is < the number of writer threads.
  for (const TraceEvent& e : buf.snapshot()) {
    EXPECT_LT(e.thread, static_cast<std::uint32_t>(kThreads));
  }
}

TEST(Trace, ToJsonShape) {
  TraceBuffer buf(4);
  buf.record(TraceKind::Fault, "f", 1, 2, 3, 4);
  const JsonValue j = buf.to_json();
  EXPECT_EQ(j.at("capacity").as_int(), 4);
  EXPECT_EQ(j.at("recorded").as_int(), 1);
  EXPECT_EQ(j.at("dropped").as_int(), 0);
  ASSERT_EQ(j.at("events").size(), 1u);
  const JsonValue& e = j.at("events").at(0);
  EXPECT_EQ(e.at("kind").as_string(), "fault");
  EXPECT_EQ(e.at("label").as_string(), "f");
  EXPECT_EQ(e.at("a").as_int(), 1);
  EXPECT_EQ(e.at("d").as_int(), 4);
}

TEST(Trace, SnapshotIsChronologicalEvenAfterWrap) {
  TraceBuffer buf(4);
  for (int i = 0; i < 11; ++i) {
    buf.record(TraceKind::Mark, "e" + std::to_string(i), i);
  }
  // The ring's physical layout has wrapped twice; the logical snapshot
  // must still come back oldest-first by timestamp.
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t, events[i - 1].t);
    EXPECT_GT(events[i].a, events[i - 1].a);
  }
  EXPECT_EQ(events.front().label, "e7");
  EXPECT_EQ(events.back().label, "e10");
}

// ---------------------------------------------------------------------------
// Spans

TEST(Span, NestedSpansParentViaThreadLocalStack) {
  SpanCollector c(16);
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    ScopedSpan outer(&c, "outer");
    ASSERT_TRUE(outer.enabled());
    outer_id = outer.id();
    {
      ScopedSpan inner(&c, "inner");
      inner_id = inner.id();
      EXPECT_NE(inner_id, outer_id);
    }
  }
  const SpanCollector::Snapshot s = c.snapshot();
  ASSERT_EQ(s.spans.size(), 2u);
  EXPECT_EQ(s.recorded, 2u);
  EXPECT_EQ(s.dropped, 0u);
  // Chronological by start: outer opened first.
  EXPECT_EQ(s.spans[0].name, "outer");
  EXPECT_EQ(s.spans[0].parent, 0u);
  EXPECT_EQ(s.spans[1].name, "inner");
  EXPECT_EQ(s.spans[1].parent, outer_id);
  EXPECT_EQ(s.spans[1].id, inner_id);
  // The inner interval nests inside the outer one.
  EXPECT_GE(s.spans[1].start_ns, s.spans[0].start_ns);
  EXPECT_LE(s.spans[1].start_ns + s.spans[1].dur_ns,
            s.spans[0].start_ns + s.spans[0].dur_ns);
}

TEST(Span, ExplicitParentCrossesThreadsAndChildrenNestLocally) {
  SpanCollector c(16);
  std::uint64_t root_id = 0, worker_id = 0;
  {
    ScopedSpan root(&c, "sweep");
    root_id = root.id();
    std::thread worker([&] {
      ScopedSpan w(&c, "worker", root.id());
      worker_id = w.id();
      ScopedSpan child(&c, "fault");  // nests under w via the local stack
    });
    worker.join();
  }
  const SpanCollector::Snapshot s = c.snapshot();
  ASSERT_EQ(s.spans.size(), 3u);
  EXPECT_EQ(s.threads, 2u);
  std::uint64_t fault_parent = 0, worker_parent = 0;
  std::uint32_t worker_tid = 0, root_tid = 0;
  for (const SpanRecord& r : s.spans) {
    if (r.name == "fault") fault_parent = r.parent;
    if (r.name == "worker") {
      worker_parent = r.parent;
      worker_tid = r.tid;
    }
    if (r.name == "sweep") root_tid = r.tid;
  }
  EXPECT_EQ(worker_parent, root_id);
  EXPECT_EQ(fault_parent, worker_id);
  EXPECT_NE(worker_tid, root_tid);
}

TEST(Span, AttrsSurviveToSnapshotAndJson) {
  SpanCollector c(16);
  {
    ScopedSpan s(&c, "op");
    s.attr("faults", std::size_t{42});
    s.attr("rate", 0.5);
    s.attr("site", "n1 sa0");
  }
  const SpanCollector::Snapshot snap = c.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  ASSERT_EQ(snap.spans[0].attrs.size(), 3u);
  EXPECT_EQ(snap.spans[0].attrs[0].key, "faults");
  EXPECT_EQ(snap.spans[0].attrs[0].i, 42);
  EXPECT_DOUBLE_EQ(snap.spans[0].attrs[1].f, 0.5);
  EXPECT_EQ(snap.spans[0].attrs[2].text, "n1 sa0");

  const JsonValue j = c.to_json();
  ASSERT_EQ(j.at("events").size(), 1u);
  const JsonValue& args = j.at("events").at(0).at("args");
  EXPECT_EQ(args.at("faults").as_int(), 42);
  EXPECT_DOUBLE_EQ(args.at("rate").as_double(), 0.5);
  EXPECT_EQ(args.at("site").as_string(), "n1 sa0");
}

TEST(Span, ScopedSpanRecordsOnceEvenWhenMoved) {
  SpanCollector c(16);
  {
    ScopedSpan a(&c, "phase");
    ScopedSpan b = std::move(a);  // a is disarmed, b owns the record
    EXPECT_FALSE(a.enabled());
    EXPECT_EQ(a.id(), 0u);
    EXPECT_TRUE(b.enabled());
    a.stop();  // no-op on the moved-from span
    b.stop();
    b.stop();  // second stop is a no-op, mirroring ScopedTimer
    EXPECT_FALSE(b.enabled());
  }
  const SpanCollector::Snapshot s = c.snapshot();
  ASSERT_EQ(s.spans.size(), 1u);
  EXPECT_EQ(s.recorded, 1u);
}

TEST(Span, NullCollectorIsANoOp) {
  ScopedSpan s(nullptr, "anything");
  EXPECT_FALSE(s.enabled());
  EXPECT_EQ(s.id(), 0u);
  s.attr("k", 1);  // must not crash
  s.stop();
  s.stop();
}

TEST(Span, InstallAndCurrentLifecycle) {
  EXPECT_EQ(SpanCollector::current(), nullptr);
  {
    SpanCollector c(16);
    SpanCollector::install(&c);
    EXPECT_EQ(SpanCollector::current(), &c);
    // The destructor uninstalls itself if still current.
  }
  EXPECT_EQ(SpanCollector::current(), nullptr);
}

TEST(Span, PerThreadRingWrapDropsOldestAndCounts) {
  SpanCollector c(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan s(&c, "s" + std::to_string(i));
  }
  const SpanCollector::Snapshot snap = c.snapshot();
  EXPECT_EQ(snap.recorded, 10u);
  EXPECT_EQ(snap.dropped, 6u);
  ASSERT_EQ(snap.spans.size(), 4u);
  // The tail survives, chronologically.
  EXPECT_EQ(snap.spans.front().name, "s6");
  EXPECT_EQ(snap.spans.back().name, "s9");
  for (std::size_t i = 1; i < snap.spans.size(); ++i) {
    EXPECT_GE(snap.spans[i].start_ns, snap.spans[i - 1].start_ns);
  }
}

TEST(Span, ConcurrentRecordingMergesChronologically) {
  SpanCollector c(1u << 10);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) ScopedSpan s(&c, "m");
    });
  }
  for (std::thread& th : threads) th.join();
  const SpanCollector::Snapshot snap = c.snapshot();
  EXPECT_EQ(snap.recorded,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.threads, static_cast<std::size_t>(kThreads));
  ASSERT_EQ(snap.spans.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 1; i < snap.spans.size(); ++i) {
    EXPECT_GE(snap.spans[i].start_ns, snap.spans[i - 1].start_ns);
  }
}

TEST(Span, MakeTraceDocumentShape) {
  SpanCollector c(16);
  { ScopedSpan s(&c, "phase.total"); }
  const JsonValue doc =
      make_trace_document("bench", "unit", 2, c, JsonValue(), 0.5);
  EXPECT_EQ(doc.at("schema").as_string(), "dp.trace.v1");
  EXPECT_EQ(doc.at("bench").as_string(), "unit");
  EXPECT_EQ(doc.at("jobs").as_int(), 2);
  EXPECT_DOUBLE_EQ(doc.at("wall_seconds").as_double(), 0.5);
  EXPECT_EQ(doc.at("spans").at("recorded").as_int(), 1);
  EXPECT_EQ(doc.at("spans").at("dropped").as_int(), 0);
  ASSERT_EQ(doc.at("spans").at("events").size(), 1u);
  EXPECT_FALSE(doc.contains("profile"));  // null profile omits the section
  // The Chrome mirror carries at least the thread-name metadata event
  // plus one complete ("X") event per span.
  const JsonValue& te = doc.at("traceEvents");
  ASSERT_TRUE(te.is_array());
  ASSERT_GE(te.size(), 2u);
  bool saw_complete = false;
  for (std::size_t i = 0; i < te.size(); ++i) {
    if (te.at(i).at("ph").as_string() == "X") {
      saw_complete = true;
      EXPECT_EQ(te.at(i).at("name").as_string(), "phase.total");
    }
  }
  EXPECT_TRUE(saw_complete);
  // Round-trips through the parser (the file the benches write).
  EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
}

// ---------------------------------------------------------------------------
// Sampling profiler

namespace {
class FixedSource : public ProfileSource {
 public:
  void profile_sample(
      std::vector<std::pair<std::string, double>>& out) const override {
    out.emplace_back("test.fixed_gauge", 17.0);
  }
};
}  // namespace

TEST(Profiler, CollectsRegisteredSourcesIntoSeries) {
  FixedSource source;
  SourceRegistry::instance().add(&source);
  SamplingProfiler profiler(std::chrono::milliseconds(1000));
  profiler.sample_now();
  profiler.sample_now();
  SourceRegistry::instance().remove(&source);
  // After remove() returns the profiler can no longer touch the source.
  const JsonValue j = profiler.to_json();
  EXPECT_GE(j.at("ticks").as_int(), 2);
  const JsonValue& series = j.at("series");
  ASSERT_TRUE(series.is_array());
  bool found = false;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const JsonValue& s = series.at(i);
    if (s.at("name").as_string() != "test.fixed_gauge") continue;
    found = true;
    ASSERT_EQ(s.at("samples").size(), 2u);
    EXPECT_DOUBLE_EQ(
        s.at("samples").at(0).at(std::size_t{1}).as_double(), 17.0);
  }
  EXPECT_TRUE(found);
  // The process RSS gauge is always present.
  bool rss = false;
  for (std::size_t i = 0; i < series.size(); ++i) {
    rss |= series.at(i).at("name").as_string() == "process.rss_mb";
  }
  EXPECT_TRUE(rss);
}

}  // namespace
}  // namespace dp::obs
