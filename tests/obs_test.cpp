// The observability layer's contract: instrument semantics (counters,
// gauges, timers, histograms), exact sums under concurrent mutation,
// deterministic registry merges, trace-ring wrap accounting, and a JSON
// model whose writer and parser round-trip each other.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON model

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(JsonValue::parse("null").kind(), JsonValue::Kind::Null);
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_EQ(JsonValue::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(JsonValue::parse("\"a\\nb\\\"c\\\\\"").as_string(), "a\nb\"c\\");
}

TEST(Json, ObjectPreservesInsertionOrderAndRoundTrips) {
  JsonValue v = JsonValue::object();
  v["zebra"] = 1;
  v["alpha"] = "two";
  v["nested"]["deep"] = true;
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  v["list"] = std::move(arr);

  const std::string text = v.dump();
  const JsonValue back = JsonValue::parse(text);
  ASSERT_TRUE(back.is_object());
  EXPECT_EQ(back.members()[0].first, "zebra");  // order survives the trip
  EXPECT_EQ(back.members()[1].first, "alpha");
  EXPECT_EQ(back.at("zebra").as_int(), 1);
  EXPECT_TRUE(back.at("nested").at("deep").as_bool());
  ASSERT_EQ(back.at("list").size(), 3u);
  EXPECT_DOUBLE_EQ(back.at("list").at(1).as_double(), 2.5);
  // Idempotent: dump(parse(dump(v))) == dump(v).
  EXPECT_EQ(back.dump(), text);
}

TEST(Json, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(JsonValue::parse("'single'"), JsonError);
  EXPECT_THROW(JsonValue::parse("nul"), JsonError);
}

TEST(Json, TypedAccessorsThrowOnKindMismatch) {
  const JsonValue v = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW(v.as_int(), JsonError);
  EXPECT_THROW(v.at("missing"), JsonError);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_TRUE(v.contains("a"));
}

TEST(Json, FileRoundTrip) {
  JsonValue v = JsonValue::object();
  v["x"] = 7;
  const std::string path = ::testing::TempDir() + "obs_test_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_json_file(path, v, &error)) << error;
  EXPECT_EQ(read_json_file(path).at("x").as_int(), 7);
  std::remove(path.c_str());
  // Unwritable path reports instead of throwing.
  EXPECT_FALSE(write_json_file("/nonexistent-dir/x.json", v, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Instruments

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry r;
  r.counter("c").add();
  r.counter("c").add(41);
  EXPECT_EQ(r.counter("c").value(), 42u);

  r.gauge("g").set(2.0);
  r.gauge("g").set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 2.0);
  r.gauge("g").set_max(5.0);  // higher: taken
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 5.0);
  r.gauge("g").add(0.5);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 5.5);
}

TEST(Metrics, TimerAggregates) {
  MetricsRegistry r;
  Timer& t = r.timer("t");
  t.record(0.25);
  t.record(0.75);
  t.record(0.5);
  const Timer::Snapshot s = t.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.total, 1.5);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 0.75);
}

TEST(Metrics, ScopedTimerRecordsOnceEvenWhenMoved) {
  MetricsRegistry r;
  {
    ScopedTimer a = r.scoped_timer("phase");
    ScopedTimer b = std::move(a);  // a is disarmed, b owns the record
    EXPECT_GE(b.stop(), 0.0);
    EXPECT_DOUBLE_EQ(b.stop(), 0.0);  // second stop is a no-op
  }
  EXPECT_EQ(r.timer("phase").snapshot().count, 1u);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry r;
  Histogram& h = r.histogram("h", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(s.counts[0], 2u);      // 0.5, 1.0 (bucket is <= bound)
  EXPECT_EQ(s.counts[1], 1u);      // 1.5
  EXPECT_EQ(s.counts[2], 1u);      // 3.0
  EXPECT_EQ(s.counts[3], 1u);      // 100.0 overflow
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 106.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Bounds are honored on first creation only.
  EXPECT_EQ(r.histogram("h", {9.0}).snapshot().bounds.size(), 3u);
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter& c = r.counter("hits");
  Gauge& g = r.gauge("sum");
  Timer& t = r.timer("work");
  Histogram& h = r.histogram("dist", {0.25, 0.5, 0.75});
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        g.add(1.0);
        t.record(0.001);
        h.observe(0.5);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_EQ(t.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Histogram::Snapshot hs = h.snapshot();
  EXPECT_EQ(hs.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hs.counts[1], hs.count);  // all samples land in (0.25, 0.5]
}

TEST(Metrics, MergeFromFoldsEverySection) {
  MetricsRegistry a, b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.counter("only_b").add(7);
  a.gauge("peak").set(3.0);
  b.gauge("peak").set(9.0);
  a.timer("t").record(1.0);
  b.timer("t").record(3.0);
  a.histogram("h", {1.0}).observe(0.5);
  b.histogram("h", {1.0}).observe(2.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 3u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("peak").value(), 9.0);  // gauges take the max
  const Timer::Snapshot t = a.timer("t").snapshot();
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.min, 1.0);
  EXPECT_DOUBLE_EQ(t.max, 3.0);
  const Histogram::Snapshot h = a.histogram("h", {1.0}).snapshot();
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
}

TEST(Metrics, ToJsonShapeIsSortedAndComplete) {
  MetricsRegistry r;
  r.counter("b.count").add(2);
  r.counter("a.count").add(1);
  r.gauge("nodes").set(12.5);
  r.timer("phase.x").record(0.5);
  r.histogram("lat", {1.0}).observe(0.25);
  r.histogram("lat", {1.0}).observe(5.0);

  const JsonValue j = r.to_json();
  ASSERT_TRUE(j.is_object());
  // Fixed section order...
  ASSERT_EQ(j.members().size(), 4u);
  EXPECT_EQ(j.members()[0].first, "counters");
  EXPECT_EQ(j.members()[1].first, "gauges");
  EXPECT_EQ(j.members()[2].first, "timers");
  EXPECT_EQ(j.members()[3].first, "histograms");
  // ...and sorted names inside each section.
  EXPECT_EQ(j.at("counters").members()[0].first, "a.count");
  EXPECT_EQ(j.at("counters").members()[1].first, "b.count");
  EXPECT_EQ(j.at("counters").at("b.count").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("nodes").as_double(), 12.5);

  const JsonValue& timer = j.at("timers").at("phase.x");
  EXPECT_EQ(timer.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(timer.at("total_s").as_double(), 0.5);
  EXPECT_TRUE(timer.contains("min_s"));
  EXPECT_TRUE(timer.contains("max_s"));

  const JsonValue& hist = j.at("histograms").at("lat");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  ASSERT_EQ(hist.at("buckets").size(), 2u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").at(0).at("le").as_double(), 1.0);
  EXPECT_EQ(hist.at("buckets").at(0).at("count").as_int(), 1);
  EXPECT_EQ(hist.at("buckets").at(1).at("le").as_string(), "inf");

  // The whole document survives a serialize/parse cycle.
  EXPECT_EQ(JsonValue::parse(j.dump()).dump(), j.dump());
}

// ---------------------------------------------------------------------------
// Trace ring

TEST(Trace, RecordsInOrderWithPayload) {
  TraceBuffer buf(8);
  buf.record(TraceKind::Phase, "build", 0);
  buf.record(TraceKind::Fault, "n1 sa0", 4, 2, 1, 3);
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::Phase);
  EXPECT_EQ(events[1].label, "n1 sa0");
  EXPECT_EQ(events[1].a, 4);
  EXPECT_EQ(events[1].b, 2);
  EXPECT_EQ(events[1].c, 1);
  EXPECT_EQ(events[1].d, 3);
  EXPECT_GE(events[1].t, events[0].t);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(Trace, WrapKeepsTailAndCountsDrops) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    buf.record(TraceKind::Mark, "e" + std::to_string(i), i);
  }
  EXPECT_EQ(buf.total_recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first tail: e6 e7 e8 e9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].label,
              "e" + std::to_string(6 + i));
  }
}

TEST(Trace, ConcurrentRecordsLoseNothingButHistory) {
  TraceBuffer buf(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        buf.record(TraceKind::Mark, "m", i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(buf.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(buf.dropped(), buf.total_recorded() - buf.capacity());
  EXPECT_EQ(buf.snapshot().size(), buf.capacity());
  // Dense thread ids: every event's id is < the number of writer threads.
  for (const TraceEvent& e : buf.snapshot()) {
    EXPECT_LT(e.thread, static_cast<std::uint32_t>(kThreads));
  }
}

TEST(Trace, ToJsonShape) {
  TraceBuffer buf(4);
  buf.record(TraceKind::Fault, "f", 1, 2, 3, 4);
  const JsonValue j = buf.to_json();
  EXPECT_EQ(j.at("capacity").as_int(), 4);
  EXPECT_EQ(j.at("recorded").as_int(), 1);
  EXPECT_EQ(j.at("dropped").as_int(), 0);
  ASSERT_EQ(j.at("events").size(), 1u);
  const JsonValue& e = j.at("events").at(0);
  EXPECT_EQ(e.at("kind").as_string(), "fault");
  EXPECT_EQ(e.at("label").as_string(), "f");
  EXPECT_EQ(e.at("a").as_int(), 1);
  EXPECT_EQ(e.at("d").as_int(), 4);
}

}  // namespace
}  // namespace dp::obs
