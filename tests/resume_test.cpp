// Checkpoint/resume contract for persistent fault sweeps: a parallel
// C432 sweep killed mid-run (SIGKILL, no destructors) resumes from its
// last completed batch and produces records bit-identical to an
// uninterrupted serial sweep; corrupt checkpoints and stale cache keys
// degrade to a full recompute, never to a crash or a mixed result.
#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "analysis/profile_io.hpp"
#include "analysis/profiles.hpp"
#include "netlist/generators.hpp"
#include "obs/metrics.hpp"
#include "store/artifact_store.hpp"

namespace dp::analysis {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("dp_resume_test_") + info->name());
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

/// Bit-identical comparison of two record lists (operator== on every
/// scalar, doubles included -- resume must not perturb anything).
void expect_identical(const std::vector<FaultRecord>& a,
                      const std::vector<FaultRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].detectable, b[i].detectable) << i;
    EXPECT_EQ(a[i].detectability, b[i].detectability) << i;
    EXPECT_EQ(a[i].upper_bound, b[i].upper_bound) << i;
    EXPECT_EQ(a[i].adherence, b[i].adherence) << i;
    EXPECT_EQ(a[i].pos_fed, b[i].pos_fed) << i;
    EXPECT_EQ(a[i].pos_observable, b[i].pos_observable) << i;
    EXPECT_EQ(a[i].max_levels_to_po, b[i].max_levels_to_po) << i;
    EXPECT_EQ(a[i].level_from_pi, b[i].level_from_pi) << i;
    EXPECT_EQ(a[i].branch_site, b[i].branch_site) << i;
    EXPECT_EQ(a[i].bridge_stuck_at, b[i].bridge_stuck_at) << i;
    EXPECT_EQ(a[i].gates_evaluated, b[i].gates_evaluated) << i;
    EXPECT_EQ(a[i].gates_skipped, b[i].gates_skipped) << i;
  }
}

bool has_file_with_suffix(const fs::path& dir, const std::string& suffix) {
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

TEST(ResumeTest, SigkilledParallelSweepResumesBitIdentical) {
  const netlist::Circuit circuit = netlist::make_benchmark("c432");

  // Ground truth: uninterrupted serial sweep, no persistence at all.
  AnalysisOptions serial;
  serial.jobs = 1;
  const CircuitProfile baseline = analyze_stuck_at(circuit, serial);

  TempDir dir;
  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: parallel checkpointed sweep. SIGKILL means no destructors,
    // no atexit -- whatever reached the disk is all that survives, which
    // is exactly the crash the store's atomic writes must tolerate.
    store::ArtifactStore store(dir.str());
    AnalysisOptions opt;
    opt.jobs = 2;
    opt.persistence.store = &store;
    opt.persistence.checkpoint_interval = 4;  // many checkpoints = an
                                              // early, reliable kill window
    analyze_stuck_at(circuit, opt);
    _exit(0);
  }

  // Parent: wait for the first durable checkpoint, then kill mid-sweep.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool saw_checkpoint = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (has_file_with_suffix(dir.path(), ".ckpt.json")) {
      saw_checkpoint = true;
      break;
    }
    // A fast child may have finished already (profile written, checkpoint
    // retired); that still exercises the cache-hit path below.
    if (has_file_with_suffix(dir.path(), ".profile.json")) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  ASSERT_TRUE(saw_checkpoint ||
              has_file_with_suffix(dir.path(), ".profile.json"))
      << "child produced no artifact within the deadline";

  // Resume in-process: consumes the checkpoint (or the finished profile)
  // and must reproduce the uninterrupted serial sweep bit for bit.
  obs::MetricsRegistry metrics;
  store::ArtifactStore store(dir.str(), store::ArtifactStore::Options{},
                             &metrics);
  AnalysisOptions opt;
  opt.jobs = 2;
  opt.persistence.store = &store;
  opt.persistence.checkpoint_interval = 4;
  const CircuitProfile resumed = analyze_stuck_at(circuit, opt);
  expect_identical(baseline.faults, resumed.faults);
  EXPECT_GE(metrics.counter("store.ckpt.hits").value() +
                metrics.counter("store.profile.hits").value(),
            1u)
      << "resume consumed neither a checkpoint nor a cached profile";

  // The completed sweep retires its checkpoint and persists the profile:
  // a third run is a pure cache hit (zero engine work).
  EXPECT_FALSE(has_file_with_suffix(dir.path(), ".ckpt.json"));
  obs::MetricsRegistry metrics2;
  store::ArtifactStore store2(dir.str(), store::ArtifactStore::Options{},
                              &metrics2);
  AnalysisOptions warm = opt;
  warm.persistence.store = &store2;
  const CircuitProfile cached = analyze_stuck_at(circuit, warm);
  expect_identical(baseline.faults, cached.faults);
  EXPECT_EQ(metrics2.counter("store.profile.hits").value(), 1u);
  EXPECT_EQ(cached.engine_stats.faults, 0u);  // no DP ran at all
}

TEST(ResumeTest, CorruptCheckpointFallsBackToFullRecompute) {
  const netlist::Circuit circuit = netlist::make_benchmark("c95");
  AnalysisOptions plain;
  const CircuitProfile baseline = analyze_stuck_at(circuit, plain);

  TempDir dir;
  obs::MetricsRegistry metrics;
  store::ArtifactStore store(dir.str(), store::ArtifactStore::Options{},
                             &metrics);
  AnalysisOptions opt;
  opt.persistence.store = &store;
  const std::string key = profile_cache_key(circuit, "sa", opt);

  // Garbage bytes where a checkpoint should be.
  std::ofstream(store.document_path(key, "ckpt"))
      << "\x00\xffnot json at all";
  const CircuitProfile p = analyze_stuck_at(circuit, opt);
  expect_identical(baseline.faults, p.faults);
  EXPECT_EQ(metrics.counter("store.ckpt.corrupt").value(), 1u);
  EXPECT_EQ(p.engine_stats.faults, baseline.faults.size());  // full sweep
}

TEST(ResumeTest, StaleKeyArtifactsAreIgnored) {
  const netlist::Circuit circuit = netlist::make_benchmark("c95");
  AnalysisOptions plain;
  const CircuitProfile baseline = analyze_stuck_at(circuit, plain);

  TempDir dir;
  store::ArtifactStore store(dir.str());
  AnalysisOptions opt;
  opt.persistence.store = &store;
  const std::string key = profile_cache_key(circuit, "sa", opt);

  // Well-formed documents carrying a DIFFERENT embedded key, planted at
  // this key's paths (as if the key derivation changed between versions).
  CircuitProfile fake;
  fake.circuit = "impostor";
  fake.faults.resize(baseline.faults.size());
  store.store_document(key, "profile", profile_to_json(fake, "stale-key"));
  SweepCheckpoint ckpt;
  ckpt.key = "stale-key";
  ckpt.total_faults = baseline.faults.size();
  ckpt.completed.resize(2);
  store.store_document(key, "ckpt", checkpoint_to_json(ckpt));

  const CircuitProfile p = analyze_stuck_at(circuit, opt);
  expect_identical(baseline.faults, p.faults);
  EXPECT_EQ(p.engine_stats.faults, baseline.faults.size());  // full sweep

  // And the recompute overwrote the stale profile with a valid one.
  const auto doc = store.load_document(key, "profile");
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(profile_from_json(*doc, key).has_value());
}

TEST(ResumeTest, NoResumeFlagIgnoresCheckpoints) {
  const netlist::Circuit circuit = netlist::make_benchmark("c95");
  AnalysisOptions plain;
  const CircuitProfile baseline = analyze_stuck_at(circuit, plain);

  TempDir dir;
  obs::MetricsRegistry metrics;
  store::ArtifactStore store(dir.str(), store::ArtifactStore::Options{},
                             &metrics);
  AnalysisOptions opt;
  opt.persistence.store = &store;
  opt.persistence.resume = false;
  const std::string key = profile_cache_key(circuit, "sa", opt);

  // A perfectly valid checkpoint that must NOT be consumed.
  SweepCheckpoint ckpt;
  ckpt.key = key;
  ckpt.total_faults = baseline.faults.size();
  ckpt.completed.assign(baseline.faults.begin(),
                        baseline.faults.begin() + 2);
  store.store_document(key, "ckpt", checkpoint_to_json(ckpt));

  const CircuitProfile p = analyze_stuck_at(circuit, opt);
  expect_identical(baseline.faults, p.faults);
  EXPECT_EQ(p.engine_stats.faults, baseline.faults.size());  // full sweep
  EXPECT_EQ(metrics.counter("store.ckpt.hits").value(), 0u);
}

TEST(ResumeTest, BridgingSweepCachesUnderItsOwnKind) {
  const netlist::Circuit circuit = netlist::make_benchmark("c17");
  TempDir dir;
  obs::MetricsRegistry metrics;
  store::ArtifactStore store(dir.str(), store::ArtifactStore::Options{},
                             &metrics);
  AnalysisOptions opt;
  opt.sampling.target_count = 20;
  opt.persistence.store = &store;

  const CircuitProfile cold =
      analyze_bridging(circuit, fault::BridgeType::And, opt);
  const CircuitProfile warm =
      analyze_bridging(circuit, fault::BridgeType::And, opt);
  expect_identical(cold.faults, warm.faults);
  EXPECT_EQ(metrics.counter("store.profile.hits").value(), 1u);
  EXPECT_EQ(warm.engine_stats.faults, 0u);

  // The OR study must not collide with the AND study's artifact.
  const CircuitProfile or_cold =
      analyze_bridging(circuit, fault::BridgeType::Or, opt);
  EXPECT_EQ(or_cold.engine_stats.faults, or_cold.faults.size());
}

}  // namespace
}  // namespace dp::analysis
