// Dynamic reordering tests: adjacent swaps and sifting must preserve every
// function (node indices are stable), keep the manager canonical, and
// actually shrink order-sensitive functions.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"

namespace dp::bdd {
namespace {

/// Checks f against an expected truth table over `nvars` inputs.
void expect_function(const Bdd& f, std::size_t nvars,
                     const std::vector<bool>& truth) {
  for (std::uint64_t p = 0; p < (1ull << nvars); ++p) {
    std::vector<bool> point(f.manager()->num_vars(), false);
    for (std::size_t v = 0; v < nvars; ++v) point[v] = (p >> v) & 1;
    ASSERT_EQ(f.eval(point), truth[p]) << "point " << p;
  }
}

std::vector<bool> truth_of(const Bdd& f, std::size_t nvars) {
  std::vector<bool> t(1ull << nvars);
  for (std::uint64_t p = 0; p < t.size(); ++p) {
    std::vector<bool> point(f.manager()->num_vars(), false);
    for (std::size_t v = 0; v < nvars; ++v) point[v] = (p >> v) & 1;
    t[p] = f.eval(point);
  }
  return t;
}

/// The separated AND-OR function: OR of (x_i AND x_{i+n}) -- exponential
/// under the natural order, linear when the pairs interleave.
Bdd separated_and_or(Manager& mgr, std::size_t pairs) {
  Bdd f = mgr.zero();
  for (Var i = 0; i < pairs; ++i) {
    f = f | (mgr.var(i) & mgr.var(static_cast<Var>(i + pairs)));
  }
  return f;
}

TEST(SwapTest, AdjacentSwapPreservesFunctionsAndUpdatesOrder) {
  constexpr std::size_t kVars = 6;
  Manager mgr(kVars);
  std::mt19937_64 rng(99);

  std::vector<Bdd> funcs;
  std::vector<std::vector<bool>> truths;
  for (int k = 0; k < 5; ++k) {
    Bdd f = mgr.zero();
    for (int j = 0; j < 12; ++j) {
      Bdd cube = mgr.one();
      for (Var v = 0; v < kVars; ++v) {
        const int c = static_cast<int>(rng() % 3);
        if (c == 0) cube = cube & mgr.var(v);
        if (c == 1) cube = cube & mgr.nvar(v);
      }
      f = f | cube;
    }
    truths.push_back(truth_of(f, kVars));
    funcs.push_back(std::move(f));
  }

  for (std::size_t level = 0; level + 1 < kVars; ++level) {
    mgr.swap_adjacent_levels(level);
    // Order bookkeeping stays consistent.
    for (std::size_t l = 0; l < kVars; ++l) {
      EXPECT_EQ(mgr.level_of(mgr.var_at_level(l)), l);
    }
    for (std::size_t k = 0; k < funcs.size(); ++k) {
      expect_function(funcs[k], kVars, truths[k]);
      EXPECT_DOUBLE_EQ(funcs[k].sat_count(kVars),
                       std::count(truths[k].begin(), truths[k].end(), true));
    }
  }
  EXPECT_THROW(mgr.swap_adjacent_levels(kVars - 1), BddError);
}

TEST(SwapTest, CanonicityHoldsAfterSwaps) {
  Manager mgr(4);
  Bdd f = (mgr.var(0) & mgr.var(2)) | (mgr.var(1) & mgr.var(3));
  mgr.swap_adjacent_levels(1);
  mgr.swap_adjacent_levels(2);
  // Rebuilding the same function must land on the same node.
  Bdd g = (mgr.var(0) & mgr.var(2)) | (mgr.var(1) & mgr.var(3));
  EXPECT_EQ(f, g);
  // De Morgan still canonical under the new order.
  EXPECT_EQ(!(f & g), (!f) | (!g));
}

TEST(SwapTest, SwapIsItsOwnInverse) {
  Manager mgr(5);
  Bdd f = separated_and_or(mgr, 2) ^ mgr.var(4);
  const std::size_t before = f.dag_size();
  const auto order_before = mgr.variable_order();
  mgr.swap_adjacent_levels(2);
  mgr.swap_adjacent_levels(2);
  EXPECT_EQ(mgr.variable_order(), order_before);
  mgr.gc();
  EXPECT_EQ(f.dag_size(), before);
}

TEST(SiftTest, ShrinksSeparatedAndOr) {
  constexpr std::size_t kPairs = 6;
  Manager mgr(2 * kPairs);
  Bdd f = separated_and_or(mgr, kPairs);
  const auto truth_sample = [&](std::uint64_t p) {
    std::vector<bool> point(2 * kPairs);
    for (std::size_t v = 0; v < 2 * kPairs; ++v) point[v] = (p >> v) & 1;
    return f.eval(point);
  };
  std::vector<std::pair<std::uint64_t, bool>> samples;
  std::mt19937_64 rng(5);
  for (int k = 0; k < 200; ++k) {
    const std::uint64_t p = rng() & ((1ull << (2 * kPairs)) - 1);
    samples.push_back({p, truth_sample(p)});
  }

  mgr.gc();
  const std::size_t before = f.dag_size();
  const std::size_t after_live = mgr.sift_reorder();
  const std::size_t after = f.dag_size();
  // Natural order needs ~2^(n+1) nodes; interleaved needs 3n + 2.
  EXPECT_GT(before, 100u);
  EXPECT_LT(after, before / 2);
  EXPECT_LE(after, 3 * kPairs + 2);
  EXPECT_LE(after_live, before + 2);

  // Function unchanged on all samples, satcount identical.
  for (const auto& [p, expected] : samples) {
    std::vector<bool> point(2 * kPairs);
    for (std::size_t v = 0; v < 2 * kPairs; ++v) point[v] = (p >> v) & 1;
    EXPECT_EQ(f.eval(point), expected);
  }
}

TEST(SiftTest, ParityIsOrderInsensitive) {
  Manager mgr(10);
  Bdd f = mgr.zero();
  for (Var v = 0; v < 10; ++v) f = f ^ mgr.var(v);
  mgr.gc();
  const std::size_t before = f.dag_size();
  mgr.sift_reorder();
  // n+1 slots under every order: complement edges collapse the even/odd
  // parity chains into one.
  EXPECT_EQ(f.dag_size(), before);
  EXPECT_EQ(before, 11u);
  EXPECT_DOUBLE_EQ(f.sat_count(10), 512.0);
}

TEST(SiftTest, MultipleRootsAllSurvive) {
  Manager mgr(8);
  std::vector<Bdd> roots;
  roots.push_back(separated_and_or(mgr, 4));
  roots.push_back(!roots[0]);
  roots.push_back(mgr.var(0).ite(mgr.var(5), mgr.var(3) ^ mgr.var(6)));
  std::vector<double> counts;
  for (const Bdd& r : roots) counts.push_back(r.sat_count(8));

  mgr.sift_reorder();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_DOUBLE_EQ(roots[i].sat_count(8), counts[i]);
  }
  // Complement pair still canonical.
  EXPECT_EQ(!roots[0], roots[1]);
}

TEST(SiftTest, RejectsBadGrowthBound) {
  Manager mgr(4);
  EXPECT_THROW(mgr.sift_reorder(0.5), BddError);
}

/// Randomized property test: random expression pools -- explicitly
/// including negated handles, so complemented root edges are live across
/// the reorder -- must survive arbitrary adjacent swaps and a full sift
/// with their semantics intact and the pool canonical (regular else-edges
/// everywhere) afterwards.
class ReorderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReorderPropertyTest, SwapsAndSiftPreserveSemanticsAndInvariants) {
  constexpr std::size_t kVars = 7;
  std::mt19937_64 rng(GetParam());
  Manager mgr(kVars);

  // Grow a pool of random functions; every third step keeps a negation,
  // so roughly a third of the roots are complemented edges.
  std::vector<Bdd> pool;
  for (Var v = 0; v < kVars; ++v) pool.push_back(mgr.var(v));
  for (int step = 0; step < 60; ++step) {
    const Bdd& a = pool[rng() % pool.size()];
    const Bdd& b = pool[rng() % pool.size()];
    switch (rng() % 4) {
      case 0: pool.push_back(a & b); break;
      case 1: pool.push_back(a | b); break;
      case 2: pool.push_back(a ^ b); break;
      default: pool.push_back(!a); break;
    }
  }

  // Snapshot semantics on random assignments (plus a few corners).
  std::vector<std::vector<bool>> points;
  for (int k = 0; k < 48; ++k) {
    const std::uint64_t p = rng();
    std::vector<bool> point(kVars);
    for (std::size_t v = 0; v < kVars; ++v) point[v] = (p >> v) & 1;
    points.push_back(std::move(point));
  }
  points.push_back(std::vector<bool>(kVars, false));
  points.push_back(std::vector<bool>(kVars, true));
  std::vector<std::vector<bool>> expected;
  for (const Bdd& f : pool) {
    std::vector<bool> row;
    row.reserve(points.size());
    for (const auto& pt : points) row.push_back(f.eval(pt));
    expected.push_back(std::move(row));
  }

  auto verify = [&](const char* where) {
    ASSERT_NO_THROW(mgr.check_canonical()) << where;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      for (std::size_t k = 0; k < points.size(); ++k) {
        ASSERT_EQ(pool[i].eval(points[k]), expected[i][k])
            << where << ": function " << i << " point " << k << " seed "
            << GetParam();
      }
    }
  };

  // Random adjacent swaps, verifying after each batch.
  for (int batch = 0; batch < 4; ++batch) {
    for (int s = 0; s < 6; ++s) {
      mgr.swap_adjacent_levels(rng() % (kVars - 1));
    }
    verify("after swap batch");
  }

  // Full sift, then one more swap pass on the sifted order.
  mgr.sift_reorder();
  verify("after sift_reorder");
  for (int s = 0; s < 5; ++s) {
    mgr.swap_adjacent_levels(rng() % (kVars - 1));
  }
  verify("after post-sift swaps");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(SiftTest, OperationsKeepWorkingAfterSift) {
  Manager mgr(12);
  Bdd f = separated_and_or(mgr, 6);
  mgr.sift_reorder();
  // Fresh algebra under the sifted order.
  Bdd g = f & mgr.var(1);
  EXPECT_TRUE(g.implies(f));
  EXPECT_EQ(f.restrict_var(0, false) | f.restrict_var(0, true), f.exists(0));
  Bdd h = f.compose(0, mgr.var(2));
  EXPECT_TRUE(h.valid());
}

}  // namespace
}  // namespace dp::bdd
