// Fault-dictionary and diagnosis tests: the dictionary built from DP's
// per-PO difference functions must agree with the simulator's observed
// responses, and diagnosis must locate injected faults.
#include <gtest/gtest.h>

#include "analysis/diagnosis.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"

namespace dp::analysis {
namespace {

using fault::StuckAtFault;
using netlist::Circuit;

struct Rig {
  explicit Rig(Circuit&& c)
      : circuit(std::move(c)),
        structure(circuit),
        manager(0),
        good(manager, circuit),
        engine(good, structure),
        fs(circuit) {}

  /// Observed failing-PO signatures of `f` on `vectors`, via simulation.
  std::vector<PoSignature> observe(const StuckAtFault& f,
                                   const std::vector<std::vector<bool>>& vs) {
    std::vector<PoSignature> out;
    for (const auto& v : vs) {
      std::vector<sim::Word> goodv(circuit.num_nets(), 0);
      std::vector<sim::Word> badv(circuit.num_nets(), 0);
      for (std::size_t i = 0; i < v.size(); ++i) {
        goodv[circuit.inputs()[i]] = badv[circuit.inputs()[i]] =
            v[i] ? ~sim::Word{0} : 0;
      }
      fs.good_values(goodv);
      fs.faulty_values(badv, f);
      PoSignature sig = 0;
      for (std::size_t p = 0; p < circuit.num_outputs(); ++p) {
        if ((goodv[circuit.outputs()[p]] ^ badv[circuit.outputs()[p]]) & 1) {
          sig |= PoSignature{1} << p;
        }
      }
      out.push_back(sig);
    }
    return out;
  }

  Circuit circuit;
  netlist::Structure structure;
  bdd::Manager manager;
  core::GoodFunctions good;
  core::DifferencePropagator engine;
  sim::FaultSimulator fs;
};

std::vector<std::vector<bool>> exhaustive_vectors(std::size_t n) {
  std::vector<std::vector<bool>> vs;
  for (std::uint64_t p = 0; p < (1ull << n); ++p) {
    std::vector<bool> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = (p >> i) & 1;
    vs.push_back(std::move(v));
  }
  return vs;
}

TEST(DiagnosisTest, DictionarySignaturesMatchSimulatedResponses) {
  Rig rig(netlist::make_c17());
  const auto faults = fault::checkpoint_faults(rig.circuit);
  const auto vectors = exhaustive_vectors(rig.circuit.num_inputs());
  const FaultDictionary dict(rig.engine, faults, vectors);

  ASSERT_EQ(dict.num_faults(), faults.size());
  ASSERT_EQ(dict.num_vectors(), vectors.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    const auto observed = rig.observe(faults[fi], vectors);
    for (std::size_t v = 0; v < vectors.size(); ++v) {
      ASSERT_EQ(dict.signature(fi, v), observed[v])
          << describe(faults[fi], rig.circuit) << " vector " << v;
    }
  }
}

TEST(DiagnosisTest, InjectedFaultDiagnosedAtDistanceZero) {
  Rig rig(netlist::make_c95_analog());
  const auto faults = fault::collapse_checkpoint_faults(rig.circuit);
  const auto vectors = exhaustive_vectors(rig.circuit.num_inputs());
  const FaultDictionary dict(rig.engine, faults, vectors);

  for (std::size_t fi = 0; fi < faults.size(); fi += 7) {
    const auto observed = rig.observe(faults[fi], vectors);
    const auto ranked = dict.diagnose(observed);
    ASSERT_FALSE(ranked.empty());
    // The injected fault must be a perfect (distance-0) match; the top
    // candidate can only differ from it by being signature-identical.
    EXPECT_EQ(ranked.front().distance, 0u);
    bool self_perfect = false;
    for (const auto& cand : ranked) {
      if (cand.distance != 0) break;
      if (cand.fault_index == fi) self_perfect = true;
    }
    EXPECT_TRUE(self_perfect) << describe(faults[fi], rig.circuit);
  }
}

TEST(DiagnosisTest, NoisyObservationStillRanksTrueFaultNearTop) {
  Rig rig(netlist::make_c17());
  const auto faults = fault::checkpoint_faults(rig.circuit);
  const auto vectors = exhaustive_vectors(5);
  const FaultDictionary dict(rig.engine, faults, vectors);

  const std::size_t target = 4;
  auto observed = rig.observe(faults[target], vectors);
  observed[3] ^= 1;  // one flipped PO observation (tester noise)
  const auto ranked = dict.diagnose(observed);
  // The true fault sits within distance 1 of the observation.
  bool found = false;
  for (const auto& cand : ranked) {
    if (cand.fault_index == target) {
      EXPECT_LE(cand.distance, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiagnosisTest, ExhaustiveDictionaryGroupsExactlyTheEquivalentFaults) {
  // With ALL vectors in the dictionary, two faults are indistinguishable
  // iff they are functionally equivalent -- so the collapsing machinery
  // and the dictionary must agree on the equivalence classes.
  Rig rig(netlist::make_c17());
  const auto faults = fault::checkpoint_faults(rig.circuit);
  const auto vectors = exhaustive_vectors(5);
  const FaultDictionary dict(rig.engine, faults, vectors);

  std::size_t grouped = 0;
  for (const auto& group : dict.indistinguishable_groups()) {
    grouped += group.size();
    if (group.size() < 2) continue;
    // Members must share complete per-PO behavior: verified by identical
    // test sets.
    const bdd::Bdd t0 = rig.engine.analyze(faults[group[0]]).test_set;
    for (std::size_t k = 1; k < group.size(); ++k) {
      EXPECT_EQ(rig.engine.analyze(faults[group[k]]).test_set, t0);
    }
  }
  EXPECT_EQ(grouped, faults.size());
  EXPECT_GT(dict.resolution(), 0.3);
  EXPECT_LT(dict.resolution(), 1.0);  // C17 has equivalent checkpoints
}

TEST(DiagnosisTest, InputValidation) {
  Rig rig(netlist::make_c17());
  const auto faults = fault::checkpoint_faults(rig.circuit);
  const auto vectors = exhaustive_vectors(5);
  EXPECT_THROW(FaultDictionary(rig.engine, faults,
                               {std::vector<bool>(3, false)}),
               std::invalid_argument);
  const FaultDictionary dict(rig.engine, faults, vectors);
  EXPECT_THROW(dict.diagnose(std::vector<PoSignature>(2, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dp::analysis
