// End-to-end integration: the full pipeline (generator -> structure ->
// good functions -> DP -> analysis) exercised across the suite, checking
// the cross-module invariants the paper's conclusions rest on.
#include <gtest/gtest.h>

#include "analysis/profiles.hpp"
#include "dp/engine.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"

namespace dp {
namespace {

class SuiteInvariantsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteInvariantsTest, StuckAtProfileInvariants) {
  const netlist::Circuit c = netlist::make_benchmark(GetParam());
  const analysis::CircuitProfile p = analysis::analyze_stuck_at(c);

  ASSERT_FALSE(p.faults.empty());
  EXPECT_EQ(p.netlist_size, c.num_gates());
  for (const analysis::FaultRecord& f : p.faults) {
    // Probability sanity.
    EXPECT_GE(f.detectability, 0.0);
    EXPECT_LE(f.detectability, 1.0);
    EXPECT_GE(f.upper_bound, 0.0);
    EXPECT_LE(f.upper_bound, 1.0);
    // The syndrome bound (paper §4.1): delta_i <= u_i, a_i = delta_i/u_i.
    EXPECT_LE(f.detectability, f.upper_bound + 1e-12);
    EXPECT_GE(f.adherence, 0.0);
    EXPECT_LE(f.adherence, 1.0);
    // Observability cannot exceed structural reach.
    EXPECT_LE(f.pos_observable, f.pos_fed);
    EXPECT_LE(f.pos_fed, c.num_outputs());
    // Detectable <=> observable somewhere.
    EXPECT_EQ(f.detectable, f.pos_observable > 0);
    // Selective-trace accounting covers every gate exactly once.
    EXPECT_EQ(f.gates_evaluated + f.gates_skipped, c.num_gates());
  }
}

TEST_P(SuiteInvariantsTest, BridgingProfileInvariants) {
  const netlist::Circuit c = netlist::make_benchmark(GetParam());
  analysis::AnalysisOptions opt;
  opt.sampling.target_count = 60;  // keep the integration sweep fast
  for (fault::BridgeType type :
       {fault::BridgeType::And, fault::BridgeType::Or}) {
    const analysis::CircuitProfile p = analysis::analyze_bridging(c, type, opt);
    ASSERT_FALSE(p.faults.empty());
    for (const analysis::FaultRecord& f : p.faults) {
      EXPECT_LE(f.detectability, f.upper_bound + 1e-12);
      EXPECT_LE(f.pos_observable, f.pos_fed);
      // A stuck-at-like bridge with a nonzero wired constant difference
      // still obeys the excitation bound; nothing else to assert per
      // fault, but the flag must be consistent with the bound: if the
      // wires never disagree the bridge cannot be stuck-at-like unless
      // both wires are constants themselves.
      if (f.upper_bound == 0.0) EXPECT_EQ(f.detectability, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteInvariantsTest,
                         ::testing::Values("fulladder", "c17", "c95",
                                           "alu181", "c432", "c499"));

TEST(PipelineTest, BenchRoundtripPreservesAnalysis) {
  // Write the ALU to .bench, read it back, and verify each checkpoint
  // fault's exact detectability is unchanged. Net ids (and with them the
  // enumeration order) legitimately differ after the roundtrip, so faults
  // are matched by name.
  const netlist::Circuit original = netlist::make_alu181();
  const netlist::Circuit reread = netlist::read_bench_string(
      netlist::write_bench_string(original), original.name());

  netlist::Structure st_a(original), st_b(reread);
  bdd::Manager ma(0), mb(0);
  core::GoodFunctions ga(ma, original), gb(mb, reread);
  core::DifferencePropagator dpa(ga, st_a), dpb(gb, st_b);

  std::size_t compared = 0;
  for (const auto& f : fault::checkpoint_faults(original)) {
    fault::StuckAtFault g;
    g.net = *reread.find_net(original.net_name(f.net));
    g.stuck_value = f.stuck_value;
    if (f.branch) {
      g.branch = netlist::PinRef{
          *reread.find_net(original.net_name(f.branch->gate)),
          f.branch->pin};
    }
    const core::FaultAnalysis a = dpa.analyze(f);
    const core::FaultAnalysis b = dpb.analyze(g);
    ASSERT_DOUBLE_EQ(a.detectability, b.detectability)
        << describe(f, original);
    ASSERT_DOUBLE_EQ(a.adherence, b.adherence) << describe(f, original);
    if (++compared == 80) break;
  }
  EXPECT_GT(compared, 0u);
}

TEST(PipelineTest, AtpgStyleFlowReachesFullCoverage) {
  // The atpg_tool example's core loop as a library-level property: DP test
  // sets, greedily compacted, must grade to full coverage of detectable
  // faults on the simulator.
  const netlist::Circuit c = netlist::make_alu181();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);
  sim::FaultSimulator fs(c);

  const auto faults = fault::collapse_checkpoint_faults(c);
  std::vector<std::vector<bool>> vectors;
  std::size_t redundant = 0;
  for (const auto& f : faults) {
    const core::FaultAnalysis a = dp.analyze(f);
    if (!a.detectable) {
      ++redundant;
      continue;
    }
    bool covered = false;
    for (const auto& v : vectors) {
      if (a.test_set.eval(v)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    const auto cube = a.test_set.sat_one();
    std::vector<bool> v(c.num_inputs(), false);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = cube[i] == 1;
    vectors.push_back(std::move(v));
  }
  const auto cov = fs.grade_vectors(faults, vectors);
  EXPECT_EQ(cov.detected + redundant, cov.total);
  // Compaction is real: far fewer vectors than faults.
  EXPECT_LT(vectors.size(), faults.size() / 2);
}

TEST(PipelineTest, CollapsedClassesShareTestSets) {
  // Fault equivalence (paper §2.1): every fault collapsed into a class
  // must have exactly the representative's complete test set.
  const netlist::Circuit c = netlist::make_c95_analog();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);

  std::size_t classes_with_members = 0;
  for (const auto& cls : fault::checkpoint_equivalence_classes(c)) {
    if (cls.collapsed.empty()) continue;
    ++classes_with_members;
    const core::FaultAnalysis rep = dp.analyze(cls.representative);
    for (const auto& member : cls.collapsed) {
      const core::FaultAnalysis m = dp.analyze(member);
      EXPECT_EQ(m.test_set, rep.test_set)
          << describe(member, c) << " vs "
          << describe(cls.representative, c);
    }
  }
  EXPECT_GT(classes_with_members, 0u);
}

}  // namespace
}  // namespace dp
