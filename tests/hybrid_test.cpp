// Hybrid pipeline handoff contract: the prefilter+DP pipeline must
// produce the same detected/undetected partition as the pure exact sweep,
// with bit-identical DP records on the remainder, at any worker count and
// any prefilter budget -- including budgets that resolve nothing or
// everything.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/hybrid.hpp"
#include "analysis/profiles.hpp"
#include "netlist/generators.hpp"
#include "obs/metrics.hpp"

namespace dp::analysis {
namespace {

void expect_matches_pure(const netlist::Circuit& circuit,
                         std::size_t prefilter_patterns, std::size_t jobs) {
  AnalysisOptions opt;
  opt.jobs = jobs;
  HybridOptions hopt;
  hopt.prefilter_patterns = prefilter_patterns;
  const CircuitProfile pure = analyze_stuck_at(circuit, opt);
  const HybridProfile hybrid = analyze_stuck_at_hybrid(circuit, opt, hopt);

  ASSERT_EQ(hybrid.faults.size(), pure.faults.size());
  EXPECT_EQ(hybrid.prefilter_resolved() + hybrid.dp_resolved(),
            hybrid.faults.size());
  for (std::size_t i = 0; i < pure.faults.size(); ++i) {
    const HybridFaultRecord& h = hybrid.faults[i];
    const FaultRecord& p = pure.faults[i];
    // Partition identity: a prefilter detection is a concrete witness, so
    // it can only ever claim faults pure DP also proves detectable.
    EXPECT_EQ(h.detectable, p.detectable) << "fault " << i;
    if (h.resolved_by == ResolvedBy::Prefilter) {
      EXPECT_TRUE(h.detectable) << "fault " << i;
      EXPECT_GT(h.detection_count, 0u) << "fault " << i;
      continue;
    }
    // Record identity on the DP remainder: same engine, same record
    // builder, so every field must match the pure sweep bit for bit.
    EXPECT_EQ(h.dp.detectable, p.detectable) << "fault " << i;
    EXPECT_EQ(h.dp.detectability, p.detectability) << "fault " << i;
    EXPECT_EQ(h.dp.upper_bound, p.upper_bound) << "fault " << i;
    EXPECT_EQ(h.dp.adherence, p.adherence) << "fault " << i;
    EXPECT_EQ(h.dp.pos_fed, p.pos_fed) << "fault " << i;
    EXPECT_EQ(h.dp.pos_observable, p.pos_observable) << "fault " << i;
    EXPECT_EQ(h.dp.max_levels_to_po, p.max_levels_to_po) << "fault " << i;
    EXPECT_EQ(h.dp.level_from_pi, p.level_from_pi) << "fault " << i;
    EXPECT_EQ(h.dp.branch_site, p.branch_site) << "fault " << i;
  }
}

TEST(HybridTest, MatchesPureDpOnC17) {
  const netlist::Circuit c = netlist::make_c17();
  // 20 patterns: a partial-word tail; resolves some but not all faults.
  expect_matches_pure(c, 20, 1);
  expect_matches_pure(c, 20, 4);
}

TEST(HybridTest, MatchesPureDpOnAlu181) {
  const netlist::Circuit c = netlist::make_benchmark("alu181");
  expect_matches_pure(c, 48, 1);
  expect_matches_pure(c, 48, 4);
}

TEST(HybridTest, ZeroPatternPrefilterDegeneratesToPureDp) {
  // No prefilter budget: every fault must flow through exact DP.
  const netlist::Circuit c = netlist::make_c17();
  AnalysisOptions opt;
  HybridOptions hopt;
  hopt.prefilter_patterns = 0;
  const HybridProfile hp = analyze_stuck_at_hybrid(c, opt, hopt);
  EXPECT_EQ(hp.prefilter_resolved(), 0u);
  EXPECT_EQ(hp.dp_resolved(), hp.faults.size());
  expect_matches_pure(c, 0, 1);
}

TEST(HybridTest, LargeBudgetResolvesEverythingDetectableOnC17) {
  // c17 has no redundant collapsed faults and is tiny: a healthy budget
  // must leave DP nothing to do.
  const netlist::Circuit c = netlist::make_c17();
  AnalysisOptions opt;
  HybridOptions hopt;
  hopt.prefilter_patterns = 4096;
  const HybridProfile hp = analyze_stuck_at_hybrid(c, opt, hopt);
  EXPECT_EQ(hp.prefilter_resolved(), hp.faults.size());
  EXPECT_EQ(hp.dp_resolved(), 0u);
  EXPECT_EQ(hp.detectable_count(), hp.faults.size());
}

TEST(HybridTest, DeterministicAcrossRunsAndJobCounts) {
  const netlist::Circuit c = netlist::make_benchmark("alu181");
  AnalysisOptions opt1, opt4;
  opt1.jobs = 1;
  opt4.jobs = 4;
  HybridOptions hopt;
  hopt.prefilter_patterns = 48;
  const HybridProfile a = analyze_stuck_at_hybrid(c, opt1, hopt);
  const HybridProfile b = analyze_stuck_at_hybrid(c, opt1, hopt);
  const HybridProfile d = analyze_stuck_at_hybrid(c, opt4, hopt);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  ASSERT_EQ(a.faults.size(), d.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    for (const HybridProfile* other : {&b, &d}) {
      EXPECT_EQ(a.faults[i].resolved_by, other->faults[i].resolved_by)
          << "fault " << i;
      EXPECT_EQ(a.faults[i].detectable, other->faults[i].detectable)
          << "fault " << i;
      EXPECT_EQ(a.faults[i].detection_count, other->faults[i].detection_count)
          << "fault " << i;
      EXPECT_EQ(a.faults[i].first_detection, other->faults[i].first_detection)
          << "fault " << i;
      EXPECT_EQ(a.faults[i].dp.detectability, other->faults[i].dp.detectability)
          << "fault " << i;
    }
  }
}

TEST(HybridTest, ProfileAccountingIsConsistent) {
  const netlist::Circuit c = netlist::make_benchmark("c432");
  AnalysisOptions opt;
  opt.jobs = 4;
  HybridOptions hopt;
  hopt.prefilter_patterns = 64;
  const HybridProfile hp = analyze_stuck_at_hybrid(c, opt, hopt);
  EXPECT_EQ(hp.circuit, c.name());
  EXPECT_EQ(hp.prefilter_patterns, 64u);
  EXPECT_EQ(hp.prefilter_resolved() + hp.dp_resolved(), hp.faults.size());
  EXPECT_EQ(hp.detectable_count() + hp.redundant_count(), hp.faults.size());
  EXPECT_GE(hp.prefilter_seconds, 0.0);
  EXPECT_GE(hp.dp_seconds, 0.0);
  // Every redundant fault must have been decided by exact DP -- the
  // prefilter can only ever prove detectability, never redundancy.
  for (const HybridFaultRecord& f : hp.faults) {
    if (!f.detectable) {
      EXPECT_EQ(f.resolved_by, ResolvedBy::ExactDp);
    }
  }
}

TEST(HybridTest, ExportMetricsCarriesPhaseTimersAndCounters) {
  const netlist::Circuit c = netlist::make_c17();
  AnalysisOptions opt;
  HybridOptions hopt;
  hopt.prefilter_patterns = 20;
  const HybridProfile hp = analyze_stuck_at_hybrid(c, opt, hopt);

  obs::MetricsRegistry reg;
  hp.export_metrics(reg);
  const obs::JsonValue j = reg.to_json();
  // The per-phase timers every trace/metrics consumer keys on.
  EXPECT_TRUE(j.at("timers").contains("phase.prefilter"));
  EXPECT_TRUE(j.at("timers").contains("phase.dp_remainder"));
  // Deterministic pipeline counters.
  EXPECT_EQ(j.at("counters").at("hybrid.faults").as_int(),
            static_cast<long long>(hp.faults.size()));
  EXPECT_EQ(j.at("counters").at("hybrid.prefilter_resolved").as_int(),
            static_cast<long long>(hp.prefilter_resolved()));
  EXPECT_EQ(j.at("counters").at("hybrid.dp_resolved").as_int(),
            static_cast<long long>(hp.dp_resolved()));
  EXPECT_EQ(j.at("counters").at("sim.patterns").as_int(), 20);
  EXPECT_EQ(j.at("counters").at("sim.events").as_int(),
            static_cast<long long>(hp.sim_events));
  // The engine's dp.* instruments are exported by callers via
  // engine_stats, never here -- exporting both would double-count.
  for (const auto& [key, value] : j.at("counters").members()) {
    EXPECT_NE(key.rfind("dp.", 0), 0u) << key;
  }
}

TEST(HybridTest, SimLevelEventAccountingIsConsistent) {
  const netlist::Circuit c = netlist::make_benchmark("alu181");
  AnalysisOptions opt;
  HybridOptions hopt;
  hopt.prefilter_patterns = 48;
  const HybridProfile hp = analyze_stuck_at_hybrid(c, opt, hopt);
  ASSERT_FALSE(hp.sim_level_events.empty());
  const std::uint64_t level_sum =
      std::accumulate(hp.sim_level_events.begin(),
                      hp.sim_level_events.end(), std::uint64_t{0});
  EXPECT_EQ(level_sum, hp.sim_events);
  EXPECT_GT(hp.sim_events, 0u);
}

TEST(HybridTest, ExportedCountersIdenticalAcrossJobCounts) {
  // The observability contract: counters (fault partition, sim events,
  // per-level activity) are deterministic properties of the workload, so
  // a --jobs 1 and a --jobs 4 run must export bit-identical counter
  // sections. Timers/gauges may of course differ.
  const netlist::Circuit c = netlist::make_benchmark("alu181");
  AnalysisOptions opt1, opt4;
  opt1.jobs = 1;
  opt4.jobs = 4;
  HybridOptions hopt;
  hopt.prefilter_patterns = 48;
  const HybridProfile a = analyze_stuck_at_hybrid(c, opt1, hopt);
  const HybridProfile b = analyze_stuck_at_hybrid(c, opt4, hopt);

  obs::MetricsRegistry ra, rb;
  a.export_metrics(ra);
  b.export_metrics(rb);
  const std::string ca = ra.to_json().at("counters").dump();
  const std::string cb = rb.to_json().at("counters").dump();
  EXPECT_EQ(ca, cb);
  // And the per-level series itself, element for element.
  EXPECT_EQ(a.sim_level_events, b.sim_level_events);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

}  // namespace
}  // namespace dp::analysis
