// GC-under-pressure stress: with a tiny node budget the manager collects
// constantly, so any stale computed-cache entry, free-list resurrection of
// a referenced node, or live-count drift surfaces immediately. Also the
// refcount-underflow regression: a double release must clamp and be
// counted, never wrap the unsigned counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"

namespace dp::bdd {
namespace {

constexpr std::size_t kVars = 12;
constexpr std::uint64_t kPoints = 1ull << kVars;

std::vector<bool> truth_table(const Bdd& f) {
  std::vector<bool> t(kPoints);
  std::vector<bool> point(kVars);
  for (std::uint64_t v = 0; v < kPoints; ++v) {
    for (std::size_t i = 0; i < kVars; ++i) point[i] = (v >> i) & 1;
    t[v] = f.eval(point);
  }
  return t;
}

/// (var, lo, hi) triples of the DAG under `root`, in DFS order over pool
/// slots (regular edges, so the accessors surface the stored fields).
/// Stable across GC iff no node of the DAG is swept or clobbered.
std::vector<std::uint64_t> dag_snapshot(const Manager& mgr, NodeIndex root) {
  std::vector<std::uint64_t> triples;
  std::vector<NodeIndex> stack{edge_regular(root)};
  std::vector<bool> seen(mgr.pool_size(), false);
  while (!stack.empty()) {
    const NodeIndex e = stack.back();  // always a regular edge
    stack.pop_back();
    const NodeIndex s = edge_slot(e);
    if (s >= seen.size() || seen[s]) continue;
    seen[s] = true;
    triples.push_back((static_cast<std::uint64_t>(mgr.var_of(e)) << 48) ^
                      (static_cast<std::uint64_t>(mgr.lo(e)) << 24) ^
                      mgr.hi(e));
    if (!mgr.is_terminal(e)) {
      stack.push_back(edge_regular(mgr.lo(e)));
      stack.push_back(edge_regular(mgr.hi(e)));
    }
  }
  return triples;
}

TEST(GcStressTest, PressureCollectionsPreserveRootsAndCaches) {
  // ~4000 nodes for 12-var random functions: the pool rides the budget,
  // so every few operations run with maybe_gc() firing near the limit.
  Manager mgr(kVars, /*max_nodes=*/4000);
  std::mt19937_64 rng(0xB00Cu);
  auto rand_var = [&] { return static_cast<Var>(rng() % kVars); };

  std::vector<Bdd> window;          // kept roots (external GC roots)
  std::vector<std::vector<bool>> tables;  // their captured semantics

  std::size_t rounds_done = 0;
  for (std::size_t round = 0; round < 120; ++round) {
    // Grow a random function from literals and (sometimes) a kept root.
    try {
      Bdd f = (rng() & 1) ? mgr.var(rand_var()) : mgr.nvar(rand_var());
      const std::size_t steps = 2 + rng() % 6;
      for (std::size_t s = 0; s < steps; ++s) {
        Bdd g = (!window.empty() && (rng() & 1))
                    ? window[rng() % window.size()]
                    : mgr.var(rand_var());
        switch (rng() % 3) {
          case 0: f = f & g; break;
          case 1: f = f | g; break;
          default: f = f ^ g; break;
        }
      }
      window.push_back(f);
      tables.push_back(truth_table(f));
    } catch (const OutOfNodes&) {
      // Live roots alone hit the budget: shrink the working set and keep
      // stressing -- recovery is part of the contract.
      const std::size_t keep = window.size() / 2;
      window.resize(keep);
      tables.resize(keep);
      mgr.gc();
      continue;
    }
    if (window.size() > 8) {
      window.erase(window.begin());
      tables.erase(tables.begin());
    }

    mgr.gc();
    ++rounds_done;

    // (c) Mark-sweep bookkeeping: the live-node gauge must equal an
    // independent mark from the external roots after every collection.
    ASSERT_EQ(mgr.count_live_from_roots(), mgr.live_nodes())
        << "round " << round;

    // (b) Free-list reuse must never clobber a referenced DAG: the node
    // triples under every kept root are unchanged by post-GC allocations.
    std::vector<std::vector<std::uint64_t>> snaps;
    snaps.reserve(window.size());
    for (const Bdd& w : window) snaps.push_back(dag_snapshot(mgr, w.index()));
    try {
      for (int burn = 0; burn < 10; ++burn) {
        (void)(mgr.var(rand_var()) ^ mgr.var(rand_var()));
      }
    } catch (const OutOfNodes&) {
      // Allocation pressure is the point; a full pool is fine here.
    }
    for (std::size_t i = 0; i < window.size(); ++i) {
      ASSERT_EQ(dag_snapshot(mgr, window[i].index()), snaps[i])
          << "root " << i << " mutated after GC in round " << round;
    }

    // (a) No stale computed-cache hits: operations recomputed after the
    // collection must match the captured pre-GC semantics exactly.
    if (window.size() >= 2) {
      const std::size_t a = rng() % window.size();
      const std::size_t b = rng() % window.size();
      try {
        const Bdd conj = window[a] & window[b];
        const Bdd xorv = window[a] ^ window[b];
        std::vector<bool> point(kVars);
        for (int probe = 0; probe < 64; ++probe) {
          const std::uint64_t v = rng() % kPoints;
          for (std::size_t i = 0; i < kVars; ++i) point[i] = (v >> i) & 1;
          ASSERT_EQ(conj.eval(point), tables[a][v] && tables[b][v])
              << "stale AND after GC, round " << round;
          ASSERT_EQ(xorv.eval(point), tables[a][v] != tables[b][v])
              << "stale XOR after GC, round " << round;
        }
      } catch (const OutOfNodes&) {
      }
    }
    // Kept roots themselves still evaluate to their captured tables.
    std::vector<bool> point(kVars);
    for (std::size_t i = 0; i < window.size(); ++i) {
      for (int probe = 0; probe < 32; ++probe) {
        const std::uint64_t v = rng() % kPoints;
        for (std::size_t k = 0; k < kVars; ++k) point[k] = (v >> k) & 1;
        ASSERT_EQ(window[i].eval(point), tables[i][v])
            << "root " << i << " corrupted in round " << round;
      }
    }
  }

  EXPECT_GT(rounds_done, 50u);
  EXPECT_GT(mgr.stats().gc_runs, 0u);
  EXPECT_EQ(mgr.stats().ref_underflows, 0u);
}

TEST(GcStressTest, DoubleReleaseClampsAndStaysCollectable) {
  Manager mgr(4);
  Bdd f = mgr.var(0) & mgr.var(1);
  const NodeIndex idx = f.index();

  // Strip the handle's legitimate reference, then release once too often:
  // the counter must clamp at zero and the incident must be counted --
  // wrapping would pin the node (and its cone) forever.
  mgr.dec_ref(idx);
  EXPECT_EQ(mgr.stats().ref_underflows, 0u);
  mgr.dec_ref(idx);
  EXPECT_EQ(mgr.stats().ref_underflows, 1u);

  // A bad index is a hard error in every build mode.
  EXPECT_THROW(mgr.dec_ref(static_cast<NodeIndex>(mgr.pool_size() + 99)),
               BddError);

  // The clamped node is unreferenced, so GC reclaims it.
  const std::size_t before = mgr.live_nodes();
  EXPECT_GT(mgr.gc(), 0u);
  EXPECT_LT(mgr.live_nodes(), before);
  EXPECT_EQ(mgr.count_live_from_roots(), mgr.live_nodes());
}

TEST(GcStressTest, HandleLifetimesBalanceReferences) {
  // Ordinary RAII usage never trips the underflow counter.
  Manager mgr(6);
  {
    Bdd a = mgr.var(0), b = mgr.var(1);
    Bdd c = (a & b) | (!a & mgr.var(2));
    Bdd d = c;
    d = c ^ b;
    c = std::move(d);
  }
  mgr.gc();
  EXPECT_EQ(mgr.stats().ref_underflows, 0u);
  EXPECT_EQ(mgr.count_live_from_roots(), mgr.live_nodes());
}

}  // namespace
}  // namespace dp::bdd
