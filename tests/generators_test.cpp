// Behavioral verification of every generated benchmark circuit against an
// independent C++ model, via exhaustive or sampled simulation.
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "netlist/generators.hpp"
#include "sim/pattern_sim.hpp"

namespace dp::netlist {
namespace {

/// Evaluates circuit outputs for one input assignment (PI-indexed bits).
std::vector<bool> run(const Circuit& c, const std::vector<bool>& in) {
  sim::PatternSimulator ps(c);
  std::vector<sim::Word> values(c.num_nets(), 0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    values[c.inputs()[i]] = in[i] ? ~sim::Word{0} : 0;
  }
  ps.eval(values);
  std::vector<bool> out;
  for (NetId po : c.outputs()) out.push_back(values[po] & 1);
  return out;
}

std::vector<bool> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = (v >> i) & 1;
  return b;
}

std::uint64_t pack(const std::vector<bool>& b, std::size_t lo, std::size_t n) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (b[lo + i]) v |= 1ull << i;
  }
  return v;
}

TEST(GeneratorsTest, C17MatchesNandEquations) {
  Circuit c = make_c17();
  EXPECT_EQ(c.num_inputs(), 5u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.num_gates(), 6u);
  for (std::uint64_t v = 0; v < 32; ++v) {
    const auto in = bits_of(v, 5);
    // PI order: 1, 2, 3, 6, 7.
    const bool i1 = in[0], i2 = in[1], i3 = in[2], i6 = in[3], i7 = in[4];
    const bool n10 = !(i1 && i3);
    const bool n11 = !(i3 && i6);
    const bool n16 = !(i2 && n11);
    const bool n19 = !(n11 && i7);
    const bool n22 = !(n10 && n16);
    const bool n23 = !(n16 && n19);
    const auto out = run(c, in);
    EXPECT_EQ(out[0], n22) << v;
    EXPECT_EQ(out[1], n23) << v;
  }
}

TEST(GeneratorsTest, FullAdderAddsBits) {
  Circuit c = make_full_adder();
  for (std::uint64_t v = 0; v < 8; ++v) {
    const auto in = bits_of(v, 3);
    const int total = in[0] + in[1] + in[2];
    const auto out = run(c, in);
    EXPECT_EQ(out[0], total & 1) << v;        // sum
    EXPECT_EQ(out[1], (total >> 1) & 1) << v;  // carry
  }
}

TEST(GeneratorsTest, RippleAdderAddsExhaustively) {
  Circuit c = make_ripple_adder(4);
  for (std::uint64_t v = 0; v < (1u << 9); ++v) {
    const auto in = bits_of(v, 9);  // a[4], b[4], cin
    const std::uint64_t a = pack(in, 0, 4), b = pack(in, 4, 4);
    const std::uint64_t cin = in[8];
    const std::uint64_t expect = a + b + cin;
    const auto out = run(c, in);
    std::uint64_t got = 0;
    for (int i = 0; i < 5; ++i) got |= static_cast<std::uint64_t>(out[i]) << i;
    EXPECT_EQ(got, expect) << "a=" << a << " b=" << b << " cin=" << cin;
  }
}

TEST(GeneratorsTest, ParityTreesComputeParity) {
  for (bool balanced : {true, false}) {
    Circuit c = make_parity_tree(7, balanced);
    for (std::uint64_t v = 0; v < (1u << 7); ++v) {
      const auto in = bits_of(v, 7);
      const bool parity = std::popcount(v) & 1;
      EXPECT_EQ(run(c, in)[0], parity) << v << " balanced=" << balanced;
    }
  }
}

TEST(GeneratorsTest, C95MultiplierIsExhaustivelyCorrect) {
  Circuit c = make_c95_analog();
  EXPECT_EQ(c.num_inputs(), 8u);
  EXPECT_EQ(c.num_outputs(), 8u);
  for (std::uint64_t v = 0; v < 256; ++v) {
    const auto in = bits_of(v, 8);
    const std::uint64_t a = pack(in, 0, 4), b = pack(in, 4, 4);
    const auto out = run(c, in);
    std::uint64_t got = 0;
    for (int i = 0; i < 8; ++i) got |= static_cast<std::uint64_t>(out[i]) << i;
    EXPECT_EQ(got, a * b) << a << "*" << b;
  }
}

TEST(GeneratorsTest, Alu181AddsInArithmeticMode) {
  Circuit c = make_alu181();
  EXPECT_EQ(c.num_inputs(), 14u);
  EXPECT_EQ(c.num_outputs(), 8u);
  // S = 1001 (s0 = 1, s3 = 1), M = 0: F = A plus B plus Cn.
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t cn = 0; cn < 2; ++cn) {
        std::vector<bool> in(14, false);
        for (int i = 0; i < 4; ++i) in[i] = (a >> i) & 1;
        for (int i = 0; i < 4; ++i) in[4 + i] = (b >> i) & 1;
        in[8] = true;   // s0
        in[11] = true;  // s3
        in[12] = false; // m = 0: arithmetic
        in[13] = cn;
        const auto out = run(c, in);
        std::uint64_t f = 0;
        for (int i = 0; i < 4; ++i) f |= static_cast<std::uint64_t>(out[i]) << i;
        const std::uint64_t sum = a + b + cn;
        EXPECT_EQ(f, sum & 0xf) << a << "+" << b << "+" << cn;
        EXPECT_EQ(out[4], (sum >> 4) & 1) << "carry";  // Cout
      }
    }
  }
}

TEST(GeneratorsTest, Alu181LogicModeSuppressesCarries) {
  Circuit c = make_alu181();
  // M = 1: F_i must depend only on A_i, B_i, S (checked by flipping a
  // lower bit and observing no effect on higher F bits).
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> in(14);
    for (auto&& bit : in) bit = rng() & 1;
    in[12] = true;  // m = 1
    const auto base = run(c, in);
    auto flipped = in;
    flipped[0] = !flipped[0];  // flip a0
    const auto out = run(c, flipped);
    for (int i = 1; i < 4; ++i) {
      EXPECT_EQ(out[i], base[i]) << "carry leaked in logic mode, trial "
                                 << trial;
    }
  }
}

TEST(GeneratorsTest, C432AnalogArbitratesChannels) {
  Circuit c = make_c432_analog();
  EXPECT_EQ(c.num_inputs(), 36u);
  EXPECT_EQ(c.num_outputs(), 7u);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<bool> in(36);
    for (auto&& bit : in) bit = rng() & 1;
    // PI order: e[9], a[9], b[9], c[9].
    bool any_a = false, any_b = false, any_c = false;
    int winner = -1;
    for (int i = 0; i < 9; ++i) {
      if (in[i] && in[9 + i]) any_a = true;
    }
    for (int i = 0; i < 9; ++i) {
      if (in[i] && in[18 + i]) any_b = true;
    }
    for (int i = 0; i < 9; ++i) {
      if (in[i] && in[27 + i]) any_c = true;
    }
    const int off = any_a ? 9 : any_b ? 18 : 27;
    for (int i = 0; i < 9 && winner < 0; ++i) {
      if (in[i] && in[off + i]) winner = i;
    }
    const auto out = run(c, in);
    EXPECT_EQ(out[0], any_a);
    EXPECT_EQ(out[1], any_b && !any_a);
    EXPECT_EQ(out[2], any_c && !any_a && !any_b);
    if (winner >= 0) {
      for (int bit = 0; bit < 4; ++bit) {
        EXPECT_EQ(out[3 + bit], static_cast<bool>((winner >> bit) & 1))
            << "trial " << trial;
      }
    }
  }
}

TEST(GeneratorsTest, C499AnalogCorrectsSingleDataErrors) {
  Circuit c = make_c499_analog();
  EXPECT_EQ(c.num_inputs(), 41u);
  EXPECT_EQ(c.num_outputs(), 32u);
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    // Random data word; compute matching check bits from the circuit
    // itself by first simulating with r = 0 and reading the syndromes off
    // an error-free reference... simpler: encode via the pattern masks.
    std::vector<bool> data(32);
    for (auto&& bit : data) bit = rng() & 1;
    std::vector<bool> check(8, false);
    for (int j = 0; j < 8; ++j) {
      bool p = false;
      for (int i = 0; i < 32; ++i) {
        unsigned pat = static_cast<unsigned>(i + 9);
        if ((pat & (pat - 1)) == 0) pat |= 0x80;
        if ((pat >> j) & 1) p ^= data[i];
      }
      check[j] = p;
    }
    // Inject a single data-bit error; with t = 1 the output must equal the
    // original data.
    const int bad = static_cast<int>(rng() % 32);
    std::vector<bool> in;
    for (int i = 0; i < 32; ++i) in.push_back(data[i] ^ (i == bad));
    for (int j = 0; j < 8; ++j) in.push_back(check[j]);
    in.push_back(true);  // t
    const auto out = run(c, in);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(out[i], data[i]) << "bit " << i << " trial " << trial;
    }
  }
}

TEST(GeneratorsTest, C1355AnalogIsNandOnly) {
  Circuit c = make_c1355_analog();
  EXPECT_EQ(c.num_inputs(), 41u);
  EXPECT_EQ(c.num_outputs(), 32u);
  for (NetId id = 0; id < c.num_nets(); ++id) {
    const GateType t = c.type(id);
    EXPECT_TRUE(t == GateType::Input || t == GateType::Nand ||
                t == GateType::And || t == GateType::Not ||
                t == GateType::Buf)
        << to_string(t);
    EXPECT_NE(t, GateType::Xor);
    EXPECT_NE(t, GateType::Xnor);
  }
  EXPECT_GT(c.num_gates(), make_c499_analog().num_gates());
}

TEST(GeneratorsTest, C1908AnalogShape) {
  Circuit c = make_c1908_analog();
  EXPECT_EQ(c.num_inputs(), 33u);
  EXPECT_EQ(c.num_outputs(), 25u);
  EXPECT_GT(c.num_gates(), 400u);
}

TEST(GeneratorsTest, C1908FlagsUncorrectableErrors) {
  Circuit c = make_c1908_analog();
  std::mt19937_64 rng(17);
  // Clean word: syndrome zero, error PO low. Two check-bit errors:
  // unmatched nonzero syndrome, error PO high.
  std::vector<bool> data(24);
  for (auto&& bit : data) bit = rng() & 1;
  std::vector<bool> check(8, false);
  for (int j = 0; j < 8; ++j) {
    bool p = false;
    for (int i = 0; i < 24; ++i) {
      unsigned pat = static_cast<unsigned>(i + 11);
      if ((pat & (pat - 1)) == 0) pat |= 0x80;
      if ((pat >> j) & 1) p ^= data[i];
    }
    check[j] = p;
  }
  auto assemble = [&](bool flip_r0, bool flip_r1) {
    std::vector<bool> in(data.begin(), data.end());
    for (int j = 0; j < 8; ++j) {
      in.push_back(check[j] ^ (j == 0 && flip_r0) ^ (j == 1 && flip_r1));
    }
    in.push_back(true);
    return in;
  };
  EXPECT_FALSE(run(c, assemble(false, false))[24]);  // clean
  EXPECT_TRUE(run(c, assemble(true, true))[24]);     // double check error
}

TEST(GeneratorsTest, SuiteIsOrderedBySize) {
  const auto names = benchmark_names();
  ASSERT_EQ(names.size(), 8u);
  std::size_t prev = 0;
  for (const auto& name : names) {
    Circuit c = make_benchmark(name);
    EXPECT_EQ(c.name(), name);
    EXPECT_GE(c.num_gates(), prev) << name;
    prev = c.num_gates();
  }
  EXPECT_THROW(make_benchmark("c6288"), NetlistError);
}

TEST(GeneratorsTest, CircuitShapeNamesRoundTrip) {
  EXPECT_EQ(all_circuit_shapes().size(), 5u);
  for (CircuitShape shape : all_circuit_shapes()) {
    const auto back = circuit_shape_from_string(to_string(shape));
    ASSERT_TRUE(back.has_value()) << to_string(shape);
    EXPECT_EQ(*back, shape);
  }
  EXPECT_FALSE(circuit_shape_from_string("banana").has_value());
  EXPECT_FALSE(circuit_shape_from_string("").has_value());
}

TEST(GeneratorsTest, ShapedCircuitsAreReproduciblePerPreset) {
  for (CircuitShape shape : all_circuit_shapes()) {
    Circuit a = make_random_circuit(99, 7, 25, 3, shape);
    Circuit b = make_random_circuit(99, 7, 25, 3, shape);
    ASSERT_EQ(a.num_nets(), b.num_nets()) << to_string(shape);
    for (NetId id = 0; id < a.num_nets(); ++id) {
      EXPECT_EQ(a.type(id), b.type(id)) << to_string(shape);
      EXPECT_EQ(a.fanins(id), b.fanins(id)) << to_string(shape);
    }
    EXPECT_EQ(a.outputs(), b.outputs()) << to_string(shape);
  }
}

TEST(GeneratorsTest, MixedShapeMatchesFourArgOverloadExactly) {
  Circuit a = make_random_circuit(42, 8, 30, 4);
  Circuit b = make_random_circuit(42, 8, 30, 4, CircuitShape::Mixed);
  ASSERT_EQ(a.num_nets(), b.num_nets());
  EXPECT_EQ(a.name(), b.name());
  for (NetId id = 0; id < a.num_nets(); ++id) {
    EXPECT_EQ(a.type(id), b.type(id));
    EXPECT_EQ(a.fanins(id), b.fanins(id));
  }
  EXPECT_EQ(a.outputs(), b.outputs());
}

TEST(GeneratorsTest, EveryShapeYieldsDrivenAcyclicCircuits) {
  for (CircuitShape shape : all_circuit_shapes()) {
    for (std::uint64_t seed : {1ull, 2ull, 77ull}) {
      Circuit c = make_random_circuit(seed, 6, 20, 3, shape);
      // finalize() already ran (it throws on undefined nets and cycles),
      // so re-check its guarantees structurally: every gate's fanins are
      // defined, and the topo order places fanins before consumers.
      EXPECT_EQ(c.num_inputs(), 6u) << to_string(shape);
      EXPECT_GE(c.num_outputs(), 3u) << to_string(shape);
      std::vector<std::size_t> position(c.num_nets());
      const auto& topo = c.topo_order();
      ASSERT_EQ(topo.size(), c.num_nets()) << to_string(shape);
      for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
      for (NetId id = 0; id < c.num_nets(); ++id) {
        if (c.type(id) != GateType::Input) {
          EXPECT_FALSE(c.fanins(id).empty()) << to_string(shape);
        }
        for (NetId f : c.fanins(id)) {
          EXPECT_LT(position[f], position[id])
              << to_string(shape) << " seed " << seed;
        }
      }
      // Every non-PO net must feed something (all sinks became POs).
      for (NetId id = 0; id < c.num_nets(); ++id) {
        if (c.fanout_count(id) == 0) {
          const auto& pos = c.outputs();
          EXPECT_TRUE(c.type(id) == GateType::Input ||
                      std::find(pos.begin(), pos.end(), id) != pos.end())
              << to_string(shape) << " seed " << seed << " net " << id;
        }
      }
    }
  }
}

TEST(GeneratorsTest, ShapePresetsSteerStructure) {
  // FanoutHeavy: some net collects much more fanout than Mixed's max.
  std::size_t mixed_max = 0, heavy_max = 0;
  Circuit mixed = make_random_circuit(5, 8, 60, 4, CircuitShape::Mixed);
  Circuit heavy = make_random_circuit(5, 8, 60, 4, CircuitShape::FanoutHeavy);
  for (NetId id = 0; id < mixed.num_nets(); ++id) {
    mixed_max = std::max(mixed_max, mixed.fanout_count(id));
  }
  for (NetId id = 0; id < heavy.num_nets(); ++id) {
    heavy_max = std::max(heavy_max, heavy.fanout_count(id));
  }
  EXPECT_GE(heavy_max, 8u);
  EXPECT_GT(heavy_max, mixed_max);

  // XorRich: a majority of gates are parity gates.
  Circuit xr = make_random_circuit(5, 8, 60, 4, CircuitShape::XorRich);
  int parity = 0, gates = 0;
  for (NetId id = 0; id < xr.num_nets(); ++id) {
    if (xr.type(id) == GateType::Input) continue;
    ++gates;
    if (xr.type(id) == GateType::Xor || xr.type(id) == GateType::Xnor) {
      ++parity;
    }
  }
  EXPECT_GE(parity * 100, gates * 40) << parity << "/" << gates;

  // DeepChain: depth equals the gate count (each gate feeds the next).
  Circuit ch = make_random_circuit(5, 4, 30, 1, CircuitShape::DeepChain);
  std::vector<int> level(ch.num_nets(), 0);
  int max_level = 0;
  for (NetId id : ch.topo_order()) {
    for (NetId f : ch.fanins(id)) level[id] = std::max(level[id], level[f] + 1);
    max_level = std::max(max_level, level[id]);
  }
  EXPECT_GE(max_level, 25);

  // Reconvergent: at least one stem reaches some net along >= 2 paths
  // through distinct immediate fanins.
  Circuit rc = make_random_circuit(5, 6, 30, 2, CircuitShape::Reconvergent);
  bool reconverges = false;
  for (NetId id = 0; id < rc.num_nets() && !reconverges; ++id) {
    const auto& fi = rc.fanins(id);
    if (fi.size() < 2) continue;
    // Both fanins are gates sharing a common transitive source.
    auto cone = [&](NetId root) {
      std::vector<bool> seen(rc.num_nets(), false);
      std::vector<NetId> stack{root};
      while (!stack.empty()) {
        NetId n = stack.back();
        stack.pop_back();
        if (seen[n]) continue;
        seen[n] = true;
        for (NetId f : rc.fanins(n)) stack.push_back(f);
      }
      return seen;
    };
    const auto a = cone(fi[0]), b = cone(fi[1]);
    for (NetId n = 0; n < rc.num_nets(); ++n) {
      if (a[n] && b[n]) {
        reconverges = true;
        break;
      }
    }
  }
  EXPECT_TRUE(reconverges);
}

TEST(GeneratorsTest, RandomCircuitIsReproducibleAndValid) {
  Circuit a = make_random_circuit(42, 8, 30, 4);
  Circuit b = make_random_circuit(42, 8, 30, 4);
  EXPECT_EQ(a.num_nets(), b.num_nets());
  for (NetId id = 0; id < a.num_nets(); ++id) {
    EXPECT_EQ(a.type(id), b.type(id));
    EXPECT_EQ(a.fanins(id), b.fanins(id));
  }
  Circuit c = make_random_circuit(43, 8, 30, 4);
  EXPECT_EQ(c.num_inputs(), 8u);
  EXPECT_GE(c.num_outputs(), 4u);
  EXPECT_THROW(make_random_circuit(1, 0, 5, 1), NetlistError);
}

}  // namespace
}  // namespace dp::netlist
