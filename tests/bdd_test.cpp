// Unit tests for the OBDD package: canonicity, Boolean algebra laws,
// counting, quantification, memory management.
#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <sstream>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/dot_export.hpp"

namespace dp::bdd {
namespace {

class BddTest : public ::testing::Test {
 protected:
  Manager mgr{8};
  Bdd x0 = mgr.var(0);
  Bdd x1 = mgr.var(1);
  Bdd x2 = mgr.var(2);
};

TEST_F(BddTest, TerminalsAreDistinctConstants) {
  EXPECT_TRUE(mgr.zero().is_zero());
  EXPECT_TRUE(mgr.one().is_one());
  EXPECT_NE(mgr.zero(), mgr.one());
  EXPECT_TRUE(mgr.zero().is_constant());
}

TEST_F(BddTest, VariablesAreCanonical) {
  EXPECT_EQ(x0, mgr.var(0));
  EXPECT_NE(x0, x1);
  EXPECT_EQ(mgr.nvar(0), !x0);
}

TEST_F(BddTest, VarOutOfRangeThrows) {
  EXPECT_THROW(mgr.var(8), BddError);
  EXPECT_THROW(mgr.nvar(100), BddError);
}

TEST_F(BddTest, BasicAlgebra) {
  EXPECT_EQ(x0 & mgr.one(), x0);
  EXPECT_EQ(x0 & mgr.zero(), mgr.zero());
  EXPECT_EQ(x0 | mgr.zero(), x0);
  EXPECT_EQ(x0 | mgr.one(), mgr.one());
  EXPECT_EQ(x0 ^ x0, mgr.zero());
  EXPECT_EQ(x0 ^ mgr.one(), !x0);
  EXPECT_EQ(x0 & x0, x0);
  EXPECT_EQ(x0 | x0, x0);
}

TEST_F(BddTest, CommutativityAndAssociativity) {
  EXPECT_EQ(x0 & x1, x1 & x0);
  EXPECT_EQ(x0 | x1, x1 | x0);
  EXPECT_EQ(x0 ^ x1, x1 ^ x0);
  EXPECT_EQ((x0 & x1) & x2, x0 & (x1 & x2));
  EXPECT_EQ((x0 | x1) | x2, x0 | (x1 | x2));
  EXPECT_EQ((x0 ^ x1) ^ x2, x0 ^ (x1 ^ x2));
}

TEST_F(BddTest, DeMorgan) {
  EXPECT_EQ(!(x0 & x1), (!x0) | (!x1));
  EXPECT_EQ(!(x0 | x1), (!x0) & (!x1));
}

TEST_F(BddTest, DoubleNegation) { EXPECT_EQ(!!x0, x0); }

TEST_F(BddTest, Distribution) {
  EXPECT_EQ(x0 & (x1 | x2), (x0 & x1) | (x0 & x2));
  EXPECT_EQ(x0 | (x1 & x2), (x0 | x1) & (x0 | x2));
}

TEST_F(BddTest, IteMatchesDefinition) {
  Bdd f = x0.ite(x1, x2);
  EXPECT_EQ(f, (x0 & x1) | ((!x0) & x2));
  EXPECT_EQ(mgr.one().ite(x1, x2), x1);
  EXPECT_EQ(mgr.zero().ite(x1, x2), x2);
  EXPECT_EQ(x0.ite(x1, x1), x1);
}

TEST_F(BddTest, XorViaIte) { EXPECT_EQ(x0 ^ x1, x0.ite(!x1, x1)); }

TEST_F(BddTest, SatCountSimple) {
  EXPECT_DOUBLE_EQ(mgr.zero().sat_count(3), 0.0);
  EXPECT_DOUBLE_EQ(mgr.one().sat_count(3), 8.0);
  EXPECT_DOUBLE_EQ(x0.sat_count(3), 4.0);
  EXPECT_DOUBLE_EQ((x0 & x1).sat_count(3), 2.0);
  EXPECT_DOUBLE_EQ((x0 | x1).sat_count(3), 6.0);
  EXPECT_DOUBLE_EQ((x0 ^ x1).sat_count(2), 2.0);
}

TEST_F(BddTest, SatCountRejectsTooFewVars) {
  EXPECT_THROW(x2.sat_count(1), BddError);
}

TEST_F(BddTest, DensityIsNormalizedSatCount) {
  EXPECT_DOUBLE_EQ((x0 & x1).density(8), 0.25);
  EXPECT_DOUBLE_EQ(mgr.one().density(8), 1.0);
}

TEST_F(BddTest, SupportListsDependentVariablesOnly) {
  Bdd f = (x0 & x2) | (!x0 & x2);  // == x2
  EXPECT_EQ(f, x2);
  EXPECT_EQ(f.support(), (std::vector<Var>{2}));
  Bdd g = x0 ^ x1 ^ x2;
  EXPECT_EQ(g.support(), (std::vector<Var>{0, 1, 2}));
  EXPECT_TRUE(mgr.one().support().empty());
}

TEST_F(BddTest, EvalWalksCofactors) {
  Bdd f = (x0 & x1) | x2;
  EXPECT_TRUE(f.eval({true, true, false, false, false, false, false, false}));
  EXPECT_FALSE(f.eval({true, false, false, false, false, false, false, false}));
  EXPECT_TRUE(f.eval({false, false, true, false, false, false, false, false}));
}

TEST_F(BddTest, SatOneReturnsSatisfyingCube) {
  Bdd f = (x0 & !x1) | (x1 & x2);
  auto cube = f.sat_one();
  ASSERT_EQ(cube.size(), mgr.num_vars());
  std::vector<bool> point(mgr.num_vars(), false);
  for (std::size_t i = 0; i < cube.size(); ++i) point[i] = cube[i] == 1;
  EXPECT_TRUE(f.eval(point));
  EXPECT_TRUE(mgr.zero().sat_one().empty());
  // All-don't-care cube for the tautology.
  for (signed char c : mgr.one().sat_one()) EXPECT_EQ(c, -1);
}

TEST_F(BddTest, RestrictIsCofactor) {
  Bdd f = (x0 & x1) | (!x0 & x2);
  EXPECT_EQ(f.restrict_var(0, true), x1);
  EXPECT_EQ(f.restrict_var(0, false), x2);
  // Restricting an absent variable is the identity.
  EXPECT_EQ(f.restrict_var(5, true), f);
}

TEST_F(BddTest, ExistsQuantifies) {
  Bdd f = x0 & x1;
  EXPECT_EQ(f.exists(0), x1);
  EXPECT_EQ(f.exists(5), f);
  Bdd g = x0 ^ x1;
  EXPECT_EQ(g.exists(0), mgr.one());
}

TEST_F(BddTest, ComposeSubstitutes) {
  Bdd f = x0 & x1;
  EXPECT_EQ(f.compose(1, x2), x0 & x2);
  EXPECT_EQ(f.compose(1, !x0), mgr.zero());
  Bdd g = x0 ^ x1;
  EXPECT_EQ(g.compose(0, x1), mgr.zero());
  // Substituting into an absent variable is the identity.
  EXPECT_EQ(f.compose(5, x2), f);
}

TEST_F(BddTest, ImpliesPredicate) {
  EXPECT_TRUE((x0 & x1).implies(x0));
  EXPECT_FALSE(x0.implies(x0 & x1));
  EXPECT_TRUE(mgr.zero().implies(x0));
}

TEST_F(BddTest, DagSizeCountsNodes) {
  EXPECT_EQ(mgr.zero().dag_size(), 1u);  // just the shared terminal
  EXPECT_EQ(x0.dag_size(), 2u);          // node + terminal
  // Parity needs ONE node per level under complement edges (the classic
  // 2x saving: even and odd parity share slots, differing only in edge
  // polarity) plus the terminal.
  Bdd f = x0 ^ x1 ^ x2;
  EXPECT_EQ(f.dag_size(), 3 + 1u);
}

TEST_F(BddTest, NegationSharesSlotsAndIsConstantTime) {
  // A function and its negation are the same DAG, opposite root polarity.
  Bdd f = (x0 & x1) | x2;
  Bdd g = !f;
  EXPECT_EQ(f.dag_size(), g.dag_size());
  EXPECT_EQ(f.index() ^ 1u, g.index());
  const std::uint64_t applies_before = mgr.stats().apply_calls;
  const std::uint64_t negs_before = mgr.stats().negations_constant_time;
  Bdd h = !g;
  EXPECT_EQ(h, f);
  // negate() must not enter the recursive apply path at all.
  EXPECT_EQ(mgr.stats().apply_calls, applies_before);
  EXPECT_EQ(mgr.stats().negations_constant_time, negs_before + 1);
}

TEST_F(BddTest, CommutativeCacheCanonicalization) {
  // f&g then g&f: the second call must be answered from the computed
  // cache via the a<=b operand swap, not recomputed.
  Bdd f = (x0 ^ x1) | x2;
  Bdd g = (x1 & x2) ^ x0;
  mgr.reset_stats();
  Bdd fg = f & g;
  const std::uint64_t hits_after_first = mgr.stats().cache_hits;
  const std::uint64_t applies_after_first = mgr.stats().apply_calls;
  Bdd gf = g & f;
  EXPECT_EQ(fg, gf);
  // One top-level apply call, answered by one cache hit (plus the swap
  // counter recording the canonicalization).
  EXPECT_EQ(mgr.stats().apply_calls, applies_after_first + 1);
  EXPECT_EQ(mgr.stats().cache_hits, hits_after_first + 1);
  EXPECT_GT(mgr.stats().cache_canonical_swaps, 0u);
  EXPECT_GT(mgr.stats().cache_hit_rate(), 0.0);
}

TEST_F(BddTest, MixingManagersThrows) {
  Manager other(4);
  Bdd y = other.var(0);
  EXPECT_THROW((void)(x0 & y), BddError);
  EXPECT_THROW((void)x0.ite(y, x1), BddError);
}

TEST_F(BddTest, EmptyHandleThrows) {
  Bdd empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)(!empty), BddError);
  EXPECT_THROW((void)empty.support(), BddError);
}

TEST_F(BddTest, DotExportMentionsAllNodes) {
  std::ostringstream os;
  write_dot(os, x0 & x1);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
}

TEST(BddMemoryTest, GcReclaimsUnreferencedNodes) {
  Manager mgr(16);
  {
    Bdd acc = mgr.one();
    for (Var v = 0; v < 16; ++v) acc = acc & mgr.var(v);
    EXPECT_GT(mgr.live_nodes(), 16u);
  }
  // All handles dropped: everything but the terminal is garbage.
  const std::size_t reclaimed = mgr.gc();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(mgr.live_nodes(), 1u);
}

TEST(BddMemoryTest, GcKeepsReferencedNodes) {
  Manager mgr(8);
  Bdd keep = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const std::size_t before_size = keep.dag_size();
  for (int i = 0; i < 100; ++i) {
    (void)(mgr.var(3) ^ mgr.var(4));  // temporaries
  }
  mgr.gc();
  EXPECT_EQ(keep.dag_size(), before_size);
  // The function still works after collection.
  EXPECT_TRUE(keep.eval({false, false, true, false, false, false, false,
                         false}));
}

TEST(BddMemoryTest, NodesSurviveGcAndStayCanonical) {
  Manager mgr(8);
  Bdd f = (mgr.var(0) & mgr.var(1)) ^ mgr.var(2);
  mgr.gc();
  Bdd g = (mgr.var(0) & mgr.var(1)) ^ mgr.var(2);
  EXPECT_EQ(f, g);  // unique table rebuilt consistently
}

TEST(BddMemoryTest, NodeBudgetThrows) {
  Manager mgr(24, /*max_nodes=*/64);
  Bdd acc = mgr.zero();
  EXPECT_THROW(
      {
        // Build a function whose BDD must exceed 64 nodes; keep handles
        // alive so GC cannot save us.
        std::vector<Bdd> keep;
        for (Var v = 0; v + 1 < 24; v += 2) {
          acc = acc | (mgr.var(v) & mgr.var(v + 1));
          keep.push_back(acc);
        }
      },
      OutOfNodes);
}

TEST(BddMemoryTest, StatsAccumulate) {
  Manager mgr(4);
  mgr.reset_stats();
  Bdd f = mgr.var(0) & mgr.var(1);
  (void)f;
  EXPECT_GT(mgr.stats().apply_calls, 0u);
  EXPECT_GT(mgr.stats().nodes_created, 0u);
}

// ---- randomized truth-table cross-checks ---------------------------------

/// Evaluates a random expression tree both as a BDD and on every point of
/// the truth table; satcount and eval must agree exactly.
class BddRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddRandomTest, MatchesTruthTableSemantics) {
  constexpr std::size_t kVars = 6;
  std::mt19937_64 rng(GetParam());
  Manager mgr(kVars);

  // Truth table representation: one 64-bit word, bit i = f(point i).
  struct Pair {
    Bdd bdd;
    std::uint64_t tt;
  };
  std::vector<Pair> pool;
  for (Var v = 0; v < kVars; ++v) {
    std::uint64_t tt = 0;
    for (std::uint64_t p = 0; p < 64; ++p) {
      if ((p >> v) & 1) tt |= 1ull << p;
    }
    pool.push_back({mgr.var(v), tt});
  }

  std::uniform_int_distribution<int> op_dist(0, 3);
  for (int step = 0; step < 200; ++step) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    const Pair& a = pool[pick(rng)];
    const Pair& b = pool[pick(rng)];
    Pair out;
    switch (op_dist(rng)) {
      case 0: out = {a.bdd & b.bdd, a.tt & b.tt}; break;
      case 1: out = {a.bdd | b.bdd, a.tt | b.tt}; break;
      case 2: out = {a.bdd ^ b.bdd, a.tt ^ b.tt}; break;
      default: out = {!a.bdd, ~a.tt}; break;
    }
    // Exact satisfying-assignment count.
    ASSERT_DOUBLE_EQ(out.bdd.sat_count(kVars),
                     static_cast<double>(std::popcount(out.tt)));
    // Pointwise agreement on every assignment.
    for (std::uint64_t p = 0; p < 64; ++p) {
      std::vector<bool> point(kVars);
      for (Var v = 0; v < kVars; ++v) point[v] = (p >> v) & 1;
      ASSERT_EQ(out.bdd.eval(point), static_cast<bool>((out.tt >> p) & 1))
          << "seed " << GetParam() << " step " << step << " point " << p;
    }
    pool.push_back(std::move(out));
  }
  // The whole pool must satisfy the canonical complement-edge invariants
  // (regular else-edges, reduction, level order, triple uniqueness).
  EXPECT_NO_THROW(mgr.check_canonical());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

/// Canonicity: semantically equal expressions built differently must be the
/// same node.
TEST_P(BddRandomTest, CanonicityAcrossConstructions) {
  constexpr std::size_t kVars = 5;
  std::mt19937_64 rng(GetParam() * 7919);
  Manager mgr(kVars);
  std::uniform_int_distribution<int> coin(0, 1);

  for (int round = 0; round < 50; ++round) {
    Bdd a = mgr.var(rng() % kVars);
    Bdd b = mgr.var(rng() % kVars);
    Bdd c = mgr.var(rng() % kVars);
    // (a&b)|(a&c) vs a&(b|c); also via ITE.
    Bdd lhs = (a & b) | (a & c);
    Bdd rhs = a & (b | c);
    EXPECT_EQ(lhs, rhs);
    Bdd ite_form = a.ite(b | c, mgr.zero());
    EXPECT_EQ(ite_form, rhs);
    if (coin(rng)) mgr.gc();
  }
}

INSTANTIATE_TEST_SUITE_P(MoreSeeds, BddRandomTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace dp::bdd
