// Microbenchmarks of the OBDD package: apply throughput, negation,
// counting and GC cost on representative function families, plus a
// deterministic difference-algebra kernel profile. Timings and kernel
// gauges (ops/sec, peak live nodes, computed-cache hit rate, wall clock)
// land in BENCH_bdd_ops.json through bench::Session, which is what the
// bench_smoke perf-regression guard compares against its checked-in
// baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>

#include "bdd/bdd.hpp"
#include "common.hpp"
#include "dp/good_functions.hpp"
#include "netlist/generators.hpp"

using namespace dp::bdd;

namespace {

/// n-variable parity (linear-size BDD).
Bdd parity(Manager& mgr, std::size_t n) {
  Bdd f = mgr.zero();
  for (Var v = 0; v < n; ++v) f = f ^ mgr.var(v);
  return f;
}

/// Disjoint AND-pairs OR'd together (achilles-heel family, ~3n/2 nodes
/// under the good interleaved order used here).
Bdd and_or(Manager& mgr, std::size_t n) {
  Bdd f = mgr.zero();
  for (Var v = 0; v + 1 < n; v += 2) f = f | (mgr.var(v) & mgr.var(v + 1));
  return f;
}

void BM_ApplyAndParity(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Manager mgr(2 * n);
  Bdd a = parity(mgr, n);
  Bdd b = mgr.zero();
  for (Var v = 0; v < n; ++v) b = b ^ mgr.var(static_cast<Var>(2 * n - 1 - v));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
  }
  state.SetLabel("parity(" + std::to_string(n) + ") & parity'");
}

void BM_Negate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Manager mgr(n);
  Bdd f = and_or(mgr, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(!f);
  }
}

void BM_NegateDistinct(benchmark::State& state) {
  // Negates a pool of distinct functions each iteration, so a recursive
  // kernel cannot amortize one hot computed-cache entry: every handle
  // costs at least a cache probe per pass, while complement edges pay a
  // single bit flip regardless of function size.
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kVars = 16;
  Manager mgr(kVars);
  std::mt19937_64 rng(21);
  std::vector<Bdd> pool;
  for (std::size_t k = 1; k <= count; ++k) {
    Bdd f = parity(mgr, 1 + k % kVars);
    Bdd cube = mgr.one();
    for (int j = 0; j < 3; ++j) {
      const Var v = static_cast<Var>(rng() % kVars);
      cube = cube & ((rng() & 1) ? mgr.var(v) : mgr.nvar(v));
    }
    pool.push_back(f ^ cube);
  }
  for (auto _ : state) {
    for (const Bdd& f : pool) benchmark::DoNotOptimize(!f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pool.size()));
}

void BM_SatCount(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Manager mgr(n);
  Bdd f = and_or(mgr, n) ^ parity(mgr, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sat_count(n));
  }
}

void BM_BuildRandomDnf(benchmark::State& state) {
  const std::size_t terms = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Manager mgr(16);
    std::mt19937_64 rng(7);
    Bdd f = mgr.zero();
    for (std::size_t t = 0; t < terms; ++t) {
      Bdd cube = mgr.one();
      for (int k = 0; k < 4; ++k) {
        Var v = static_cast<Var>(rng() % 16);
        cube = cube & ((rng() & 1) ? mgr.var(v) : mgr.nvar(v));
      }
      f = f | cube;
    }
    benchmark::DoNotOptimize(f.index());
  }
}

void BM_GarbageCollection(benchmark::State& state) {
  const std::size_t n = 20;
  for (auto _ : state) {
    state.PauseTiming();
    Manager mgr(n);
    Bdd keep = and_or(mgr, n);
    for (int i = 0; i < 200; ++i) {
      (void)(parity(mgr, n) ^ mgr.var(static_cast<Var>(i % n)));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.gc());
  }
}

/// Console reporter that additionally folds each benchmark's per-iteration
/// real time into the session registry as gauge
/// "gbench.<benchmark>.ns_per_op", so BENCH_bdd_ops.json carries the
/// numbers the regression guard diffs.
class MetricsReporter : public benchmark::ConsoleReporter {
 public:
  explicit MetricsReporter(dp::obs::MetricsRegistry& registry)
      : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations == 0) {
        continue;
      }
      const double ns_per_op = 1e9 * run.real_accumulated_time /
                               static_cast<double>(run.iterations);
      registry_.gauge("gbench." + run.benchmark_name() + ".ns_per_op")
          .set(ns_per_op);
    }
  }

 private:
  dp::obs::MetricsRegistry& registry_;
};

/// Deterministic difference-algebra workload: the paper's OR/NOR row
/// (f̄A·ΔfB ⊕ f̄B·ΔfA ⊕ ΔfA·ΔfB) over a rolling pool of functions.
/// Negation/XOR-heavy by construction -- the exact kernel path the DP
/// sweeps hammer -- and independent of any --benchmark_filter, so the
/// smoke runs still produce the bdd.* gauges the regression guard needs.
void run_kernel_profile(dp::bench::Session& session) {
  dp::obs::ScopedTimer timer = session.phase("kernel_profile");
  const auto start = std::chrono::steady_clock::now();

  constexpr std::size_t kVars = 16;
  // A bounded pool keeps maybe_gc() in the loop, so the gauges cover the
  // same alloc/collect rhythm as a real sweep.
  Manager mgr(kVars, /*max_nodes=*/1u << 20);
  std::mt19937_64 rng(0xD1FFu);
  std::vector<Bdd> pool;
  for (Var v = 0; v < kVars; ++v) pool.push_back(mgr.var(v));
  for (int step = 0; step < 800; ++step) {
    const Bdd fa = pool[rng() % pool.size()];
    const Bdd fb = pool[rng() % pool.size()];
    const Bdd da = pool[rng() % pool.size()];
    const Bdd db = pool[rng() % pool.size()];
    Bdd delta = ((!fa) & db) ^ ((!fb) & da) ^ (da & db);
    pool.push_back(std::move(delta));
    if (pool.size() > 3 * kVars) pool.erase(pool.begin() + kVars);
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  const ManagerStats& st = mgr.stats();
  const double ops =
      static_cast<double>(st.apply_calls + st.negations_constant_time);
  mgr.export_metrics(session.metrics(), "bdd");
  session.metrics().gauge("bdd.ops_per_second").set(
      secs > 0.0 ? ops / secs : 0.0);
  session.metrics().gauge("bdd.kernel_wall_seconds").set(secs);
  std::cout << "kernel profile: "
            << dp::analysis::TextTable::num(ops / 1e6, 2) << "M ops in "
            << dp::analysis::TextTable::num(secs, 3) << " s ("
            << dp::analysis::TextTable::num(ops / secs / 1e6, 1)
            << "M ops/s, cache hit "
            << dp::analysis::TextTable::num(100.0 * st.cache_hit_rate(), 1)
            << "%, peak " << st.peak_live_nodes << " nodes, "
            << st.negations_constant_time << " O(1) negations)\n";
}

/// Good-function builds of the paper's XOR-heavy circuits: deterministic
/// node-count gauges for the structure the complement-edge kernel shares
/// across polarities (C1355's NAND tree keeps both phases of every parity
/// live). The full DP-sweep peak is clipped at the GC threshold floor on
/// these circuits, so this phase is where the node reduction is measured.
void run_good_function_profile(dp::bench::Session& session) {
  dp::obs::ScopedTimer timer = session.phase("good_functions");
  for (const char* name : {"c432", "c499", "c1355"}) {
    const auto start = std::chrono::steady_clock::now();
    const dp::netlist::Circuit circuit = dp::netlist::make_benchmark(name);
    Manager mgr;
    dp::core::GoodFunctions good(mgr, circuit);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    const std::string prefix = std::string("bdd.good_") + name;
    session.metrics().gauge(prefix + ".total_nodes")
        .set(static_cast<double>(good.total_nodes()));
    session.metrics().gauge(prefix + ".peak_live_nodes")
        .set(static_cast<double>(mgr.stats().peak_live_nodes));
    session.metrics().gauge(prefix + ".build_seconds").set(secs);
    std::cout << "good functions " << name << ": " << good.total_nodes()
              << " dag nodes, peak " << mgr.stats().peak_live_nodes
              << " live, "
              << dp::analysis::TextTable::num(secs, 3) << " s\n";
  }
}

}  // namespace

BENCHMARK(BM_ApplyAndParity)->Arg(16)->Arg(24)->Arg(32);
BENCHMARK(BM_Negate)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_NegateDistinct)->Arg(64);
BENCHMARK(BM_SatCount)->Arg(16)->Arg(32)->Arg(48);
BENCHMARK(BM_BuildRandomDnf)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GarbageCollection)->Unit(benchmark::kMicrosecond);

// Hand-rolled BENCHMARK_MAIN so the common flags (--metrics-json, --trace,
// --jobs) work here too; everything unrecognized passes through to
// google-benchmark untouched. Document id "bdd_ops" -> BENCH_bdd_ops.json
// under DP_BENCH_METRICS_DIR.
int main(int argc, char** argv) {
  dp::bench::Session session("bdd_ops", argc, argv,
                             /*passthrough_unknown=*/true);
  std::vector<char*> args;
  char arg0_default[] = "perf_bdd_ops";
  args.push_back(argc > 0 ? argv[0] : arg0_default);
  for (char* a : session.passthrough_argv()) args.push_back(a);
  int bench_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&bench_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  {
    dp::obs::ScopedTimer timer = session.phase("benchmarks");
    MetricsReporter reporter(session.metrics());
    const std::size_t run = ::benchmark::RunSpecifiedBenchmarks(&reporter);
    timer.stop();
    session.metrics().counter("benchmarks.run").add(run);
  }
  run_kernel_profile(session);
  run_good_function_profile(session);
  ::benchmark::Shutdown();
  return 0;
}
