// Microbenchmarks of the OBDD package: apply throughput, negation,
// counting and GC cost on representative function families.
#include <benchmark/benchmark.h>

#include <random>

#include "bdd/bdd.hpp"
#include "common.hpp"

using namespace dp::bdd;

namespace {

/// n-variable parity (linear-size BDD).
Bdd parity(Manager& mgr, std::size_t n) {
  Bdd f = mgr.zero();
  for (Var v = 0; v < n; ++v) f = f ^ mgr.var(v);
  return f;
}

/// Disjoint AND-pairs OR'd together (achilles-heel family, ~3n/2 nodes
/// under the good interleaved order used here).
Bdd and_or(Manager& mgr, std::size_t n) {
  Bdd f = mgr.zero();
  for (Var v = 0; v + 1 < n; v += 2) f = f | (mgr.var(v) & mgr.var(v + 1));
  return f;
}

void BM_ApplyAndParity(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Manager mgr(2 * n);
  Bdd a = parity(mgr, n);
  Bdd b = mgr.zero();
  for (Var v = 0; v < n; ++v) b = b ^ mgr.var(static_cast<Var>(2 * n - 1 - v));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
  }
  state.SetLabel("parity(" + std::to_string(n) + ") & parity'");
}

void BM_Negate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Manager mgr(n);
  Bdd f = and_or(mgr, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(!f);
  }
}

void BM_SatCount(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Manager mgr(n);
  Bdd f = and_or(mgr, n) ^ parity(mgr, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sat_count(n));
  }
}

void BM_BuildRandomDnf(benchmark::State& state) {
  const std::size_t terms = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Manager mgr(16);
    std::mt19937_64 rng(7);
    Bdd f = mgr.zero();
    for (std::size_t t = 0; t < terms; ++t) {
      Bdd cube = mgr.one();
      for (int k = 0; k < 4; ++k) {
        Var v = static_cast<Var>(rng() % 16);
        cube = cube & ((rng() & 1) ? mgr.var(v) : mgr.nvar(v));
      }
      f = f | cube;
    }
    benchmark::DoNotOptimize(f.index());
  }
}

void BM_GarbageCollection(benchmark::State& state) {
  const std::size_t n = 20;
  for (auto _ : state) {
    state.PauseTiming();
    Manager mgr(n);
    Bdd keep = and_or(mgr, n);
    for (int i = 0; i < 200; ++i) {
      (void)(parity(mgr, n) ^ mgr.var(static_cast<Var>(i % n)));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.gc());
  }
}

}  // namespace

BENCHMARK(BM_ApplyAndParity)->Arg(16)->Arg(24)->Arg(32);
BENCHMARK(BM_Negate)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_SatCount)->Arg(16)->Arg(32)->Arg(48);
BENCHMARK(BM_BuildRandomDnf)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GarbageCollection)->Unit(benchmark::kMicrosecond);

// Hand-rolled BENCHMARK_MAIN so the common flags (--metrics-json, --trace,
// --jobs) work here too; everything unrecognized passes through to
// google-benchmark untouched.
int main(int argc, char** argv) {
  dp::bench::Session session("perf_bdd_ops", argc, argv,
                             /*passthrough_unknown=*/true);
  std::vector<char*> args;
  char arg0_default[] = "perf_bdd_ops";
  args.push_back(argc > 0 ? argv[0] : arg0_default);
  for (char* a : session.passthrough_argv()) args.push_back(a);
  int bench_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&bench_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  dp::obs::ScopedTimer timer = session.phase("benchmarks");
  const std::size_t run = ::benchmark::RunSpecifiedBenchmarks();
  timer.stop();
  session.metrics().counter("benchmarks.run").add(run);
  ::benchmark::Shutdown();
  return 0;
}
