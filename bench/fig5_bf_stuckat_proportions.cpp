// Figure 5: proportions of AND and OR non-feedback bridging faults whose
// site fault function is constant, i.e. that behave exactly as (double)
// stuck-at faults. The paper's functional result agrees with Inductive
// Fault Analysis: these proportions are generally low, and circuits with
// many stuck-at-like AND NFBFs have few stuck-at-like OR NFBFs and
// vice versa.
#include <algorithm>

#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("fig5_bf_stuckat_proportions", argc, argv);
  bench::banner("Figure 5 -- proportions of NFBFs with stuck-at behavior",
                "Single stuck-at faults model bridging faults poorly: the "
                "stuck-at-like fraction is generally low for both dominance "
                "types.");

  const analysis::AnalysisOptions& opt = session.options();
  analysis::TextTable table(
      {"circuit", "AND NFBFs", "AND stuck-at frac", "OR NFBFs",
       "OR stuck-at frac"});
  std::cout << "csv:circuit,and_fraction,or_fraction\n";

  double max_fraction = 0.0;
  bool anti_correlated_somewhere = false;
  double prev_and = -1, prev_or = -1;
  for (const std::string& name : netlist::benchmark_names()) {
    obs::ScopedTimer timer = session.phase(name);
    const netlist::Circuit c = netlist::make_benchmark(name);
    const analysis::CircuitProfile pa =
        analysis::analyze_bridging(c, fault::BridgeType::And, opt);
    const analysis::CircuitProfile po =
        analysis::analyze_bridging(c, fault::BridgeType::Or, opt);
    timer.stop();
    session.record_profile(pa);
    session.record_profile(po);
    const double fa = pa.bridge_stuck_at_fraction();
    const double fo = po.bridge_stuck_at_fraction();
    table.add_row({name, std::to_string(pa.faults.size()),
                   analysis::TextTable::num(fa),
                   std::to_string(po.faults.size()),
                   analysis::TextTable::num(fo)});
    analysis::write_csv_row(std::cout, {name, analysis::TextTable::num(fa),
                                        analysis::TextTable::num(fo)});
    max_fraction = std::max({max_fraction, fa, fo});
    if (prev_and >= 0) {
      // Relatively more AND stuck-ats going with relatively fewer OR
      // stuck-ats between adjacent circuits (the paper's "vice versa").
      if ((fa - prev_and) * (fo - prev_or) < 0) anti_correlated_somewhere = true;
    }
    prev_and = fa;
    prev_or = fo;
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(max_fraction < 0.5,
                     "stuck-at-like proportions generally low (max " +
                         analysis::TextTable::num(max_fraction, 3) + ")");
  bench::shape_check(anti_correlated_somewhere,
                     "AND-heavy circuits are OR-light somewhere in the suite");
  return 0;
}
