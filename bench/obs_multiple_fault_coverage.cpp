// Hughes & McCluskey's question (the paper's ref [2]), answered exactly:
// how well does a COMPLETE single-stuck-at test set cover multiple
// stuck-at faults? DP gives every multiple fault's complete test set, so
// coverage is a membership check instead of a simulation estimate.
#include "common.hpp"
#include "dp/engine.hpp"
#include "fault/multiple.hpp"
#include "netlist/structure.hpp"

using namespace dp;

namespace {

/// Greedy single-SA ATPG (same flow as examples/atpg_tool).
std::vector<std::vector<bool>> single_sa_test_set(
    const netlist::Circuit& c, core::DifferencePropagator& dp) {
  std::vector<std::vector<bool>> vectors;
  for (const auto& f : fault::collapse_checkpoint_faults(c)) {
    const core::FaultAnalysis a = dp.analyze(f);
    if (!a.detectable) continue;
    bool covered = false;
    for (const auto& v : vectors) {
      if (a.test_set.eval(v)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    const auto cube = a.test_set.sat_one();
    std::vector<bool> v(c.num_inputs(), false);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = cube[i] == 1;
    vectors.push_back(std::move(v));
  }
  return vectors;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("obs_multiple_fault_coverage", argc, argv);
  bench::banner("Observation -- multiple-fault coverage of single-SA test "
                "sets (ref [2])",
                "Complete single stuck-at test sets detect nearly all -- "
                "but not provably all -- multiple stuck-at faults.");

  analysis::TextTable table({"circuit", "vectors", "multiplicity",
                             "sampled faults", "detectable", "covered",
                             "coverage"});
  std::cout << "csv:circuit,multiplicity,detectable,covered,coverage\n";
  double min_cov = 1.0;
  for (const char* name : {"c95", "alu181", "c432"}) {
    obs::ScopedTimer timer = session.phase(name);
    const netlist::Circuit c = netlist::make_benchmark(name);
    netlist::Structure st(c);
    bdd::Manager mgr(0);
    core::GoodFunctions good(mgr, c);
    core::DifferencePropagator::Options dp_opts;
    dp_opts.trace = session.trace();
    core::DifferencePropagator dp(good, st, dp_opts);
    const auto vectors = single_sa_test_set(c, dp);

    for (std::size_t multiplicity : {2u, 3u}) {
      const auto faults =
          fault::sample_multiple_faults(c, multiplicity, 300, 1990);
      session.metrics().counter("mf.faults_sampled").add(faults.size());
      std::size_t detectable = 0, covered = 0;
      for (const auto& mf : faults) {
        const core::FaultAnalysis a = dp.analyze(mf);
        if (!a.detectable) continue;
        ++detectable;
        for (const auto& v : vectors) {
          if (a.test_set.eval(v)) {
            ++covered;
            break;
          }
        }
      }
      const double cov =
          detectable ? static_cast<double>(covered) /
                           static_cast<double>(detectable)
                     : 1.0;
      min_cov = std::min(min_cov, cov);
      table.add_row({name, std::to_string(vectors.size()),
                     std::to_string(multiplicity),
                     std::to_string(faults.size()),
                     std::to_string(detectable), std::to_string(covered),
                     analysis::TextTable::num(cov)});
      analysis::write_csv_row(
          std::cout, {name, std::to_string(multiplicity),
                      std::to_string(detectable), std::to_string(covered),
                      analysis::TextTable::num(cov)});
    }
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(min_cov > 0.9,
                     "single-SA-complete sets cover >90% of detectable "
                     "multiple faults (worst " +
                         analysis::TextTable::num(min_cov) + ")");
  return 0;
}
