// Syndrome-testability study (Savir, the paper's ref [11]): for each
// circuit, the fraction of detectable checkpoint faults that also change
// some PO's syndrome -- i.e. would be caught by count-based (syndrome)
// testing. Exact faulty syndromes come free from the symbolic engine.
#include "common.hpp"
#include "dp/symbolic_sim.hpp"
#include "netlist/structure.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("obs_syndrome_testing", argc, argv);
  bench::banner("Observation -- syndrome testability (ref [11])",
                "Most, but not all, detectable faults shift a PO syndrome; "
                "XOR-rich circuits hide balanced flips from count testing.");

  analysis::TextTable table({"circuit", "detectable faults",
                             "syndrome-detectable", "fraction"});
  std::cout << "csv:circuit,detectable,syndrome_detectable,fraction\n";
  double min_frac = 1.0, max_frac = 0.0;
  std::string min_name, max_name;
  for (const char* name : {"c17", "c95", "alu181", "c432", "c499"}) {
    obs::ScopedTimer timer = session.phase(name);
    const netlist::Circuit c = netlist::make_benchmark(name);
    netlist::Structure st(c);
    bdd::Manager mgr(0);
    core::GoodFunctions good(mgr, c);
    core::SymbolicFaultSimulator sym(good, st);

    std::size_t detectable = 0, syndrome_detectable = 0;
    for (const auto& f : fault::collapse_checkpoint_faults(c)) {
      if (!sym.analyze(f).detectable) continue;
      ++detectable;
      if (sym.syndrome_test(f).syndrome_detectable) ++syndrome_detectable;
    }
    session.metrics().counter("syn.detectable").add(detectable);
    session.metrics().counter("syn.syndrome_detectable")
        .add(syndrome_detectable);
    const double frac = detectable ? static_cast<double>(syndrome_detectable) /
                                         static_cast<double>(detectable)
                                   : 0.0;
    table.add_row({name, std::to_string(detectable),
                   std::to_string(syndrome_detectable),
                   analysis::TextTable::num(frac)});
    analysis::write_csv_row(std::cout,
                            {name, std::to_string(detectable),
                             std::to_string(syndrome_detectable),
                             analysis::TextTable::num(frac)});
    if (frac < min_frac) {
      min_frac = frac;
      min_name = name;
    }
    if (frac > max_frac) {
      max_frac = frac;
      max_name = name;
    }
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(max_frac > 0.9,
                     max_name + ": syndrome testing catches most faults (" +
                         analysis::TextTable::num(max_frac) + ")");
  bench::shape_check(min_frac < 1.0,
                     min_name + ": count-based testing has blind spots (" +
                         analysis::TextTable::num(min_frac) + ")");
  return 0;
}
