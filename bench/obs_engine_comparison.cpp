// Section 3 context: Difference Propagation was "developed primarily as an
// alternative for comparison to CATAPULT", and "can be seen to be similar
// in approach to the symbolic fault simulation system developed by Cho and
// Bryant". All three are implemented here; this bench runs them over the
// same collapsed stuck-at sets, confirms the results are bit-identical,
// and compares their costs.
#include <chrono>

#include "common.hpp"
#include "dp/boolean_difference.hpp"
#include "dp/engine.hpp"
#include "dp/symbolic_sim.hpp"
#include "netlist/structure.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("obs_engine_comparison", argc, argv);
  bench::banner("Comparison -- DP vs Boolean difference vs symbolic fault "
                "simulation",
                "Identical exact results by three methods; DP avoids the "
                "explicit Boolean difference of the CATAPULT scheme.");

  analysis::TextTable table({"circuit", "faults", "identical", "DP ms",
                             "BoolDiff ms", "SymSim ms", "DP applies",
                             "BD applies", "SYM applies"});
  std::cout << "csv:circuit,dp_ms,bd_ms,sym_ms,dp_applies,bd_applies,sym_applies\n";

  bool all_identical = true;
  for (const char* name : {"c95", "alu181", "c432", "c499"}) {
    obs::ScopedTimer timer = session.phase(name);
    const netlist::Circuit c = netlist::make_benchmark(name);
    netlist::Structure st(c);
    bdd::Manager mgr(0);
    core::GoodFunctions good(mgr, c);
    core::DifferencePropagator::Options dp_opts;
    dp_opts.trace = session.trace();
    core::DifferencePropagator dp(good, st, dp_opts);
    core::BooleanDifferenceEngine bd(good, st);
    core::SymbolicFaultSimulator sym(good, st);
    const auto faults = fault::collapse_checkpoint_faults(c);

    struct Cost {
      long long ms = 0;
      std::uint64_t applies = 0;
    };
    std::vector<bdd::Bdd> dp_sets, bd_sets, sym_sets;
    auto time_engine = [&](auto&& engine, std::vector<bdd::Bdd>& sets) {
      mgr.reset_stats();
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& f : faults) sets.push_back(engine.analyze(f).test_set);
      Cost cost;
      cost.ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      cost.applies = mgr.stats().apply_calls;
      return cost;
    };
    const Cost dp_cost = time_engine(dp, dp_sets);
    const Cost bd_cost = time_engine(bd, bd_sets);
    const Cost sym_cost = time_engine(sym, sym_sets);

    bool identical = true;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      identical = identical && dp_sets[i] == bd_sets[i] &&
                  dp_sets[i] == sym_sets[i];
    }
    all_identical = all_identical && identical;

    table.add_row({name, std::to_string(faults.size()),
                   identical ? "yes" : "NO", std::to_string(dp_cost.ms),
                   std::to_string(bd_cost.ms), std::to_string(sym_cost.ms),
                   std::to_string(dp_cost.applies),
                   std::to_string(bd_cost.applies),
                   std::to_string(sym_cost.applies)});
    analysis::write_csv_row(
        std::cout,
        {name, std::to_string(dp_cost.ms), std::to_string(bd_cost.ms),
         std::to_string(sym_cost.ms), std::to_string(dp_cost.applies),
         std::to_string(bd_cost.applies), std::to_string(sym_cost.applies)});
    timer.stop();
    session.metrics().counter("cmp.faults").add(faults.size());
    session.metrics().gauge("cmp.dp_applies").add(
        static_cast<double>(dp_cost.applies));
    session.metrics().gauge("cmp.bd_applies").add(
        static_cast<double>(bd_cost.applies));
    session.metrics().gauge("cmp.sym_applies").add(
        static_cast<double>(sym_cost.applies));
    mgr.export_metrics(session.metrics(), std::string("bdd.") + name);
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(all_identical,
                     "all three engines produce bit-identical test sets");
  return 0;
}
