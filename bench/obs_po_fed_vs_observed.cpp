// Section 4.1 observation: "The number of POs fed by a fault site were
// counted and compared to the number of POs at which the fault was
// observable. These numbers are almost always the same." Supports the
// justify-to-the-closest-PO heuristic and maximizing PO counts for
// testability.
#include <algorithm>

#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("obs_po_fed_vs_observed", argc, argv);
  bench::banner("Observation -- POs fed vs POs observable (stuck-at)",
                "Structurally reachable PO counts nearly always equal the "
                "counts of POs where the fault is actually observable.");

  // Branch-site checkpoints are skipped: their fed count refers to the
  // fanout stem while the difference only travels through the fed gate.
  analysis::TextTable table(
      {"circuit", "stem faults (detectable)", "fed == observed", "fraction"});
  std::cout << "csv:circuit,fraction_equal\n";
  double min_fraction = 1.0;
  for (const std::string& name : netlist::benchmark_names()) {
    obs::ScopedTimer timer = session.phase(name);
    const analysis::CircuitProfile p = analysis::analyze_stuck_at(
        netlist::make_benchmark(name), session.options());
    timer.stop();
    session.record_profile(p);
    const double frac = p.po_fed_equals_observed_fraction();
    std::size_t eq = 0, det = 0;
    for (const auto& f : p.faults) {
      if (!f.detectable || f.branch_site) continue;
      ++det;
      eq += (f.pos_fed == f.pos_observable);
    }
    table.add_row({name, std::to_string(det), std::to_string(eq),
                   analysis::TextTable::num(frac)});
    analysis::write_csv_row(std::cout, {name, analysis::TextTable::num(frac)});
    min_fraction = std::min(min_fraction, frac);
  }
  std::cout << "\n";
  table.print(std::cout);
  bench::shape_check(min_fraction > 0.6,
                     "fed and observed PO counts 'almost always the same' "
                     "(worst circuit: " +
                         analysis::TextTable::num(min_fraction, 3) + ")");
  return 0;
}
