// Shared glue for the figure-reproduction benches: consistent headers,
// option handling, and profile -> report plumbing.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "netlist/generators.hpp"

namespace dp::bench {

/// Every bench prints the same banner so bench_output.txt reads as an
/// experiment log keyed to the paper's figure/table numbers.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==================================================================\n";
  std::cout << id << "\n";
  std::cout << "Paper: Butler & Mercer, DAC 1990. " << claim << "\n";
  std::cout << "==================================================================\n";
}

/// Bridging-fault sample size: the paper tuned theta for ~1000 faults.
/// Override with DP_BENCH_BF_COUNT for quick runs. Pass the bench's argv
/// to honor `--jobs N` (or the DP_BENCH_JOBS env var): the sweep then
/// runs fault-parallel with N private-manager workers (0 = all hardware
/// threads); results are bit-identical to the serial sweep.
inline analysis::AnalysisOptions default_options(int argc = 0,
                                                 char** argv = nullptr) {
  analysis::AnalysisOptions opt;
  opt.sampling.target_count = 1000;
  if (const char* env = std::getenv("DP_BENCH_BF_COUNT")) {
    opt.sampling.target_count = static_cast<std::size_t>(std::atoll(env));
  }
  if (const char* env = std::getenv("DP_BENCH_JOBS")) {
    opt.jobs = static_cast<std::size_t>(std::atoll(env));
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      opt.jobs = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
  }
  return opt;
}

inline void shape_check(bool ok, const std::string& what) {
  std::cout << (ok ? "[shape OK]   " : "[shape MISS] ") << what << "\n";
}

}  // namespace dp::bench
