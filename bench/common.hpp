// Shared glue for the figure-reproduction benches: consistent headers,
// strict option handling, phase timing, and profile -> report -> metrics
// plumbing. Every bench accepts the same flags:
//
//   --jobs N            fault-parallel workers (0 = all hardware threads)
//   --metrics-json PATH write a dp.metrics.v1 JSON document on exit
//   --trace             keep a per-fault event trace (embedded in the JSON)
//   --trace-out PATH    record hierarchical spans + profiler samples and
//                       write a dp.trace.v1 document (also loadable in
//                       Perfetto / chrome://tracing) on exit
//   --cache-dir PATH    content-addressed artifact cache: completed
//                       profiles are served without rebuilding BDDs, and
//                       interrupted sweeps resume from their last batch
//
// Unknown flags and flags missing their value are hard errors (usage on
// stderr, exit 2) -- a typo must never silently run the default
// configuration for an hour.
#pragma once

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "netlist/generators.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "store/artifact_store.hpp"

namespace dp::bench {

/// Every bench prints the same banner so bench_output.txt reads as an
/// experiment log keyed to the paper's figure/table numbers.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==================================================================\n";
  std::cout << id << "\n";
  std::cout << "Paper: Butler & Mercer, DAC 1990. " << claim << "\n";
  std::cout << "==================================================================\n";
}

namespace detail {

/// Everything the shared command line can configure.
struct CommonArgs {
  analysis::AnalysisOptions options;
  std::string metrics_json;
  std::string trace_out;  ///< --trace-out or DP_BENCH_TRACE_DIR
  std::string cache_dir;  ///< --cache-dir or DP_BENCH_CACHE_DIR
  bool trace = false;
  bool jobs_set = false;  ///< --jobs or DP_BENCH_JOBS was given
  /// Unrecognized argv entries, kept only in passthrough mode (the
  /// google-benchmark benches forward these to benchmark::Initialize).
  std::vector<char*> passthrough;
};

inline void print_usage(std::ostream& os, const char* prog,
                        bool passthrough) {
  os << "usage: " << (prog && *prog ? prog : "bench")
     << " [--jobs N] [--metrics-json PATH] [--trace] [--trace-out PATH]\n"
        "            [--cache-dir PATH]";
  if (passthrough) os << " [benchmark flags...]";
  os << "\n"
        "  --jobs N            fault-parallel workers; 0 = all hardware "
        "threads, 1 = serial\n"
        "  --metrics-json PATH write a dp.metrics.v1 JSON document on exit\n"
        "  --trace             record per-fault trace events into the JSON "
        "document\n"
        "  --trace-out PATH    write a dp.trace.v1 span/profile document "
        "(Perfetto-loadable)\n"
        "  --cache-dir PATH    artifact cache: reuse completed profiles, "
        "resume interrupted sweeps\n"
        "env: DP_BENCH_BF_COUNT (bridging sample size), DP_BENCH_JOBS,\n"
        "     DP_BENCH_METRICS_DIR (write BENCH_<id>.json there when\n"
        "     --metrics-json is absent), DP_BENCH_TRACE_DIR (write\n"
        "     TRACE_<id>.json there when --trace-out is absent),\n"
        "     DP_BENCH_CACHE_DIR (as --cache-dir when the flag is absent)\n";
}

/// Parses the shared bench flags. Strict by default: an unknown flag or a
/// flag missing its value (e.g. `--jobs` as the final token) prints usage
/// and exits(2) instead of being silently dropped. With `passthrough`,
/// unrecognized arguments are collected instead of rejected.
inline CommonArgs parse_common_args(int argc, char** argv,
                                    bool passthrough = false) {
  CommonArgs args;
  args.options.sampling.target_count = 1000;
  if (const char* env = std::getenv("DP_BENCH_BF_COUNT")) {
    args.options.sampling.target_count =
        static_cast<std::size_t>(std::atoll(env));
  }
  if (const char* env = std::getenv("DP_BENCH_JOBS")) {
    args.options.jobs = static_cast<std::size_t>(std::atoll(env));
    args.jobs_set = true;
  }
  if (const char* env = std::getenv("DP_BENCH_CACHE_DIR")) {
    args.cache_dir = env;
  }

  const char* prog = argc > 0 ? argv[0] : nullptr;
  auto fail = [&](const std::string& message) {
    std::cerr << "error: " << message << "\n";
    print_usage(std::cerr, prog, passthrough);
    std::exit(2);
  };
  auto parse_count = [&](const char* flag, const char* text) -> std::size_t {
    char* end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
      fail(std::string(flag) + " expects a non-negative integer, got '" +
           text + "'");
    }
    return static_cast<std::size_t>(v);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value_of = [&]() -> const char* {
      if (i + 1 >= argc) fail(a + " requires a value");
      return argv[++i];
    };
    if (a == "--jobs") {
      args.options.jobs = parse_count("--jobs", value_of());
      args.jobs_set = true;
    } else if (a == "--metrics-json") {
      args.metrics_json = value_of();
    } else if (a == "--trace-out") {
      args.trace_out = value_of();
    } else if (a == "--cache-dir") {
      args.cache_dir = value_of();
    } else if (a == "--trace") {
      args.trace = true;
    } else if (a == "--help" || a == "-h") {
      print_usage(std::cout, prog, passthrough);
      std::exit(0);
    } else if (passthrough) {
      args.passthrough.push_back(argv[i]);
    } else {
      fail("unknown option '" + a + "'");
    }
  }
  return args;
}

}  // namespace detail

/// Back-compat shim: the shared strict parser, returning just the
/// analysis options.
inline analysis::AnalysisOptions default_options(int argc = 0,
                                                 char** argv = nullptr) {
  return detail::parse_common_args(argc, argv).options;
}

inline void shape_check(bool ok, const std::string& what) {
  std::cout << (ok ? "[shape OK]   " : "[shape MISS] ") << what << "\n";
}

/// One bench run: parses the shared flags, owns the metrics registry and
/// (optional) trace buffer, times phases, folds every analyzed circuit's
/// engine stats into the registry, and writes the JSON document on
/// destruction when --metrics-json (or DP_BENCH_METRICS_DIR) asked for
/// one. Document shape:
///
///   { "bench": "<id>", "schema": "dp.metrics.v1", "jobs": N,
///     "metrics": { counters, gauges, timers, histograms },
///     "circuits": [ { circuit, gates, inputs, outputs, faults, ... } ],
///     "trace": { ... }            // only with --trace
///   }
class Session {
 public:
  /// `id` names the output document (BENCH_<id>.json under
  /// DP_BENCH_METRICS_DIR); use the executable's short name.
  /// `passthrough_unknown` keeps unrecognized argv entries available via
  /// passthrough_argv() instead of rejecting them.
  explicit Session(std::string id, int argc = 0, char** argv = nullptr,
                   bool passthrough_unknown = false)
      : id_(std::move(id)),
        args_(detail::parse_common_args(argc, argv, passthrough_unknown)),
        circuits_(obs::JsonValue::array()),
        start_(std::chrono::steady_clock::now()) {
    if (args_.metrics_json.empty()) {
      if (const char* dir = std::getenv("DP_BENCH_METRICS_DIR")) {
        args_.metrics_json = std::string(dir) + "/BENCH_" + id_ + ".json";
      }
    }
    if (args_.trace_out.empty()) {
      if (const char* dir = std::getenv("DP_BENCH_TRACE_DIR")) {
        args_.trace_out = std::string(dir) + "/TRACE_" + id_ + ".json";
      }
    }
    if (args_.trace) {
      trace_ = std::make_unique<obs::TraceBuffer>(1u << 16);
      args_.options.dp.trace = trace_.get();
    }
    if (!args_.trace_out.empty()) {
      // Install the collector process-wide so the engines' instrumentation
      // points find it via SpanCollector::current() -- no plumbing through
      // the analysis call chain.
      spans_ = std::make_unique<obs::SpanCollector>();
      obs::SpanCollector::install(spans_.get());
      profiler_ = std::make_unique<obs::SamplingProfiler>();
      profiler_->start();
    }
    if (!args_.cache_dir.empty()) {
      store_ = std::make_unique<store::ArtifactStore>(
          args_.cache_dir, store::ArtifactStore::Options{}, &metrics_);
      args_.options.persistence.store = store_.get();
    }
  }
  ~Session() { finish(); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Mutable so a bench can tweak sampling/collapse before the sweep.
  analysis::AnalysisOptions& options() { return args_.options; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Non-null only with --trace.
  obs::TraceBuffer* trace() { return trace_.get(); }
  /// Non-null only with --cache-dir / DP_BENCH_CACHE_DIR (already wired
  /// into options().persistence).
  store::ArtifactStore* store() { return store_.get(); }
  bool metrics_requested() const { return !args_.metrics_json.empty(); }
  /// True when --jobs (or DP_BENCH_JOBS) was given explicitly, letting a
  /// bench keep its own default worker count otherwise.
  bool jobs_explicit() const { return args_.jobs_set; }
  /// Arguments the strict parser did not recognize (passthrough mode).
  std::vector<char*>& passthrough_argv() { return args_.passthrough; }

  /// RAII wall-clock for one named phase; exported as timer
  /// "phase.<name>" and -- when --trace-out is active -- as a span of the
  /// same name, so the phase shows up on the trace timeline too.
  obs::ScopedTimer phase(const std::string& name) {
    return obs::ScopedTimer(metrics_.timer("phase." + name),
                            obs::ScopedSpan(spans_.get(), "phase." + name));
  }

  /// Folds one analyzed circuit into the document: engine stats into the
  /// registry (counters/gauges/timers) plus a per-circuit JSON record.
  void record_profile(const analysis::CircuitProfile& p) {
    obs::JsonValue c = start_circuit_record(p.circuit, p.netlist_size,
                                            p.num_inputs, p.num_outputs,
                                            p.faults.size(), p.engine_stats);
    c["detectable"] = p.detectable_count();
    c["mean_detectability_detectable"] = p.mean_detectability_detectable();
    c["mean_detectability_per_po"] = p.mean_detectability_per_po();
    circuits_.push_back(std::move(c));
  }

  /// Per-circuit record for benches that verify results themselves and
  /// only need the engine telemetry (throughput, peak nodes, cache hit
  /// rate, wall clock) in the document. `ops_per_second` is the bench's
  /// primary throughput (faults/s for the DP sweeps).
  void record_engine(const std::string& circuit, std::size_t gates,
                     std::size_t inputs, std::size_t outputs,
                     std::size_t faults, double ops_per_second,
                     const core::ParallelStats& es) {
    obs::JsonValue c =
        start_circuit_record(circuit, gates, inputs, outputs, faults, es);
    c["ops_per_second"] = ops_per_second;
    circuits_.push_back(std::move(c));
  }

  /// Writes the document (idempotent; also run by the destructor).
  /// Returns false only when a requested write failed.
  bool finish() {
    if (finished_) return true;
    finished_ = true;
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    metrics_.timer("phase.total").record(wall);

    bool ok = true;
    if (spans_) {
      if (obs::SpanCollector::current() == spans_.get()) {
        obs::SpanCollector::install(nullptr);
      }
      profiler_->stop();
      obs::JsonValue tdoc = obs::make_trace_document(
          "bench", id_, args_.options.jobs, *spans_, profiler_->to_json(),
          wall);
      std::string error;
      if (!obs::write_json_file_atomic(args_.trace_out, tdoc, &error)) {
        std::cerr << "[trace] FAILED to write " << args_.trace_out << ": "
                  << error << "\n";
        ok = false;
      } else {
        std::cout << "[trace] wrote " << args_.trace_out << "\n";
      }
    }
    if (args_.metrics_json.empty()) return ok;

    obs::JsonValue doc = obs::JsonValue::object();
    doc["bench"] = id_;
    doc["schema"] = "dp.metrics.v1";
    doc["jobs"] = args_.options.jobs;
    doc["metrics"] = metrics_.to_json();
    doc["circuits"] = std::move(circuits_);
    if (store_) {
      obs::JsonValue& cache = doc["cache"];
      cache["dir"] = store_->dir();
      cache["bytes"] = store_->size_bytes();
    }
    if (trace_) doc["trace"] = trace_->to_json();

    // Atomic rename: a bench killed mid-write leaves the previous
    // document (or nothing), never a torn half-file.
    std::string error;
    if (!obs::write_json_file_atomic(args_.metrics_json, doc, &error)) {
      std::cerr << "[metrics] FAILED to write " << args_.metrics_json << ": "
                << error << "\n";
      return false;
    }
    std::cout << "[metrics] wrote " << args_.metrics_json << "\n";
    return ok;
  }

 private:
  /// Shared identity + engine section of a per-circuit record; the caller
  /// adds its result fields and pushes onto circuits_.
  obs::JsonValue start_circuit_record(const std::string& circuit,
                                      std::size_t gates, std::size_t inputs,
                                      std::size_t outputs, std::size_t faults,
                                      const core::ParallelStats& es) {
    es.export_metrics(metrics_);
    metrics_.counter("bench.circuits").add(1);

    std::size_t peak = 0;
    for (const core::WorkerStats& w : es.workers) {
      peak = std::max(peak, w.peak_live_nodes);
    }

    obs::JsonValue c = obs::JsonValue::object();
    c["circuit"] = circuit;
    c["gates"] = gates;
    c["inputs"] = inputs;
    c["outputs"] = outputs;
    c["faults"] = faults;
    obs::JsonValue& e = c["engine"];
    e["jobs"] = es.jobs;
    e["wall_seconds"] = es.wall_seconds;
    e["gates_evaluated"] = es.total_gates_evaluated();
    e["gates_skipped"] = es.total_gates_skipped();
    e["apply_calls"] = es.total_apply_calls();
    e["cache_hits"] = es.total_cache_hits();
    e["cache_hit_rate"] = es.cache_hit_rate();
    e["negations_constant_time"] = es.total_negations_constant_time();
    e["cache_canonical_swaps"] = es.total_cache_canonical_swaps();
    e["gc_runs"] = es.total_gc_runs();
    e["peak_live_nodes"] = peak;
    e["ref_underflows"] = es.total_ref_underflows();
    return c;
  }

  std::string id_;
  detail::CommonArgs args_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  std::unique_ptr<obs::SpanCollector> spans_;
  std::unique_ptr<obs::SamplingProfiler> profiler_;
  std::unique_ptr<store::ArtifactStore> store_;
  obs::JsonValue circuits_;
  std::chrono::steady_clock::time_point start_;
  bool finished_ = false;
};

}  // namespace dp::bench
