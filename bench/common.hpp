// Shared glue for the figure-reproduction benches: consistent headers,
// option handling, and profile -> report plumbing.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "netlist/generators.hpp"

namespace dp::bench {

/// Every bench prints the same banner so bench_output.txt reads as an
/// experiment log keyed to the paper's figure/table numbers.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==================================================================\n";
  std::cout << id << "\n";
  std::cout << "Paper: Butler & Mercer, DAC 1990. " << claim << "\n";
  std::cout << "==================================================================\n";
}

/// Bridging-fault sample size: the paper tuned theta for ~1000 faults.
/// Override with DP_BENCH_BF_COUNT for quick runs.
inline analysis::AnalysisOptions default_options() {
  analysis::AnalysisOptions opt;
  opt.sampling.target_count = 1000;
  if (const char* env = std::getenv("DP_BENCH_BF_COUNT")) {
    opt.sampling.target_count = static_cast<std::size_t>(std::atoll(env));
  }
  return opt;
}

inline void shape_check(bool ok, const std::string& what) {
  std::cout << (ok ? "[shape OK]   " : "[shape MISS] ") << what << "\n";
}

}  // namespace dp::bench
