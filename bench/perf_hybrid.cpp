// Hybrid bit-parallel-sim/DP pipeline vs the pure exact-DP sweep on a
// random-pattern-friendly circuit (default c1908). The wide simulator
// knocks out the easy faults; exact Difference Propagation runs only on
// the random-pattern-resistant remainder. Verifies the hybrid partition
// and the remainder's exact detectabilities are bit-identical to the
// pure sweep, then reports the per-phase split and the end-to-end
// speedup. Usage: perf_hybrid [--circuit NAME] [--patterns N] [--jobs N]
// (defaults c1908 / 4096 / 4; DP_BENCH_JOBS env also honored).
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "analysis/hybrid.hpp"
#include "common.hpp"

using namespace dp;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  // Document id "hybrid" -> BENCH_hybrid.json under DP_BENCH_METRICS_DIR:
  // the repo's hybrid-pipeline perf trajectory. Passthrough mode so the
  // bench-specific --circuit/--patterns flags coexist with the common
  // ones.
  bench::Session session("hybrid", argc, argv, /*passthrough_unknown=*/true);
  bench::banner("Perf -- hybrid bit-parallel sim / DP pipeline",
                "Random patterns detect most stuck-at faults cheaply; exact "
                "DP need only analyze the resistant remainder.");

  std::string circuit_name = "c1908";
  std::size_t patterns = 4096;
  const auto& extra = session.passthrough_argv();
  for (std::size_t i = 0; i < extra.size(); ++i) {
    const std::string a = extra[i];
    auto value_of = [&]() -> const char* {
      if (i + 1 >= extra.size()) {
        std::cerr << "error: " << a << " requires a value\n";
        std::exit(2);
      }
      return extra[++i];
    };
    if (a == "--circuit") {
      circuit_name = value_of();
    } else if (a == "--patterns") {
      patterns = static_cast<std::size_t>(std::atoll(value_of()));
    } else {
      std::cerr << "error: unknown option '" << a << "'\n";
      return 2;
    }
  }
  std::size_t jobs = session.jobs_explicit() ? session.options().jobs : 4;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  session.options().jobs = jobs;

  const netlist::Circuit circuit = netlist::make_benchmark(circuit_name);
  std::cout << "\nCircuit " << circuit.name() << ": " << circuit.num_gates()
            << " gates, " << circuit.num_inputs() << " PIs, "
            << circuit.num_outputs() << " POs; --jobs " << jobs << ", "
            << patterns << " prefilter patterns\n";

  // Pure exact-DP baseline: every collapsed checkpoint fault through the
  // parallel engine.
  obs::ScopedTimer pure_timer = session.phase("pure_dp");
  const auto pure_start = Clock::now();
  const analysis::CircuitProfile pure =
      analysis::analyze_stuck_at(circuit, session.options());
  pure_timer.stop();
  const double pure_s = seconds_since(pure_start);
  std::cout << "pure DP sweep:  " << analysis::TextTable::num(pure_s, 3)
            << " s (" << pure.faults.size() << " faults)\n";

  // Hybrid pipeline, same engine options. The per-phase split is recorded
  // under phase.prefilter / phase.dp_remainder in the document (and the
  // phase.hybrid span frames both on the trace timeline).
  obs::ScopedTimer hybrid_timer = session.phase("hybrid");
  const auto hybrid_start = Clock::now();
  analysis::HybridOptions hopt;
  hopt.prefilter_patterns = patterns;
  const analysis::HybridProfile hp =
      analysis::analyze_stuck_at_hybrid(circuit, session.options(), hopt);
  hybrid_timer.stop();
  const double hybrid_s = seconds_since(hybrid_start);
  hp.export_metrics(session.metrics());
  std::cout << "hybrid pipeline: " << analysis::TextTable::num(hybrid_s, 3)
            << " s (prefilter "
            << analysis::TextTable::num(hp.prefilter_seconds, 3) << " s, DP "
            << analysis::TextTable::num(hp.dp_seconds, 3) << " s)\n";
  std::cout << "prefilter resolved " << hp.prefilter_resolved() << "/"
            << hp.faults.size() << " faults ("
            << analysis::TextTable::num(hp.prefilter_fraction()) << "), DP "
            << hp.dp_resolved() << " remainder\n\n";
  hp.engine_stats.print(std::cout);
  session.record_engine(circuit.name(), circuit.num_gates(),
                        circuit.num_inputs(), circuit.num_outputs(),
                        hp.faults.size(),
                        hybrid_s > 0 ? hp.faults.size() / hybrid_s : 0.0,
                        hp.engine_stats);

  // The handoff contract, checked against the pure sweep: identical
  // detected/undetected partition, and bit-identical exact records on the
  // DP remainder (both paths share the same record builder).
  std::size_t partition_mismatches = 0, record_mismatches = 0;
  for (std::size_t i = 0; i < hp.faults.size(); ++i) {
    const analysis::HybridFaultRecord& h = hp.faults[i];
    if (h.detectable != pure.faults[i].detectable) ++partition_mismatches;
    if (h.resolved_by == analysis::ResolvedBy::ExactDp &&
        h.dp.detectability != pure.faults[i].detectability) {
      ++record_mismatches;
    }
  }

  const double speedup = hybrid_s > 0 ? pure_s / hybrid_s : 0.0;
  std::cout << "\ncsv:circuit,patterns,jobs,pure_s,hybrid_s,prefilter_s,"
               "dp_remainder_s,prefilter_resolved,dp_resolved,speedup\n";
  analysis::write_csv_row(
      std::cout,
      {circuit.name(), std::to_string(patterns), std::to_string(jobs),
       analysis::TextTable::num(pure_s, 3),
       analysis::TextTable::num(hybrid_s, 3),
       analysis::TextTable::num(hp.prefilter_seconds, 3),
       analysis::TextTable::num(hp.dp_seconds, 3),
       std::to_string(hp.prefilter_resolved()),
       std::to_string(hp.dp_resolved()),
       analysis::TextTable::num(speedup, 2)});

  bench::shape_check(partition_mismatches == 0,
                     "hybrid detected/undetected partition identical to pure "
                     "DP (" + std::to_string(partition_mismatches) +
                         " mismatches)");
  bench::shape_check(record_mismatches == 0,
                     "DP-remainder detectabilities bit-identical to pure DP "
                     "(" + std::to_string(record_mismatches) +
                         " mismatches)");
  // The headline claims hold on the default workload; a reduced smoke run
  // (small circuit or short pattern budget) only checks the plumbing.
  if (circuit_name == "c1908" && patterns >= 4096) {
    bench::shape_check(hp.prefilter_fraction() >= 0.80,
                       "prefilter resolves >= 80% of stuck-at faults (" +
                           analysis::TextTable::num(hp.prefilter_fraction()) +
                           ")");
    bench::shape_check(hybrid_s < pure_s,
                       "hybrid end-to-end faster than pure DP (" +
                           analysis::TextTable::num(speedup, 2) + "x)");
  } else {
    std::cout << "[shape SKIP] resolution/speedup claims measured on the "
                 "default c1908/4096 workload only; got "
              << circuit.name() << "/" << patterns << " ("
              << analysis::TextTable::num(hp.prefilter_fraction())
              << " resolved, "
              << analysis::TextTable::num(speedup, 2) << "x)\n";
  }
  return 0;
}
