// Table 1: the output-difference relationships, validated symbolically on
// random functions, plus the selective-trace ablation the table enables:
// "calculations are only performed as long as difference information
// exists" (paper §3).
#include <random>

#include "common.hpp"
#include "dp/difference.hpp"
#include "dp/engine.hpp"
#include "netlist/structure.hpp"

using namespace dp;

namespace {

bdd::Bdd random_function(bdd::Manager& mgr, std::mt19937_64& rng,
                         std::size_t nvars) {
  bdd::Bdd f = mgr.zero();
  for (std::uint64_t m = 0; m < (1ull << nvars); ++m) {
    if (rng() & 1) {
      bdd::Bdd cube = mgr.one();
      for (bdd::Var v = 0; v < nvars; ++v) {
        cube = cube & (((m >> v) & 1) ? mgr.var(v) : mgr.nvar(v));
      }
      f = f | cube;
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("tab1_difference_algebra", argc, argv);
  bench::banner("Table 1 -- output difference functions per gate type",
                "Delta fC in terms of input good functions and input "
                "differences only; inversions never change the difference.");

  // Part 1: symbolic validation over random functions.
  obs::ScopedTimer identities_timer = session.phase("identities");
  constexpr std::size_t kVars = 6;
  bdd::Manager mgr(kVars);
  std::mt19937_64 rng(1990);
  std::size_t checked = 0, agreed = 0;
  for (int round = 0; round < 500; ++round) {
    const bdd::Bdd fa = random_function(mgr, rng, kVars);
    const bdd::Bdd fb = random_function(mgr, rng, kVars);
    const bdd::Bdd Fa = random_function(mgr, rng, kVars);
    const bdd::Bdd Fb = random_function(mgr, rng, kVars);
    const bdd::Bdd da = fa ^ Fa, db = fb ^ Fb;
    struct Row {
      const char* gate;
      bdd::Bdd direct, formula;
    };
    const Row rows[] = {
        {"AND/NAND", (fa & fb) ^ (Fa & Fb),
         core::gate_difference2(netlist::GateType::And, fa, fb, da, db)},
        {"OR/NOR", (fa | fb) ^ (Fa | Fb),
         core::gate_difference2(netlist::GateType::Or, fa, fb, da, db)},
        {"XOR/XNOR", (fa ^ fb) ^ (Fa ^ Fb),
         core::gate_difference2(netlist::GateType::Xor, fa, fb, da, db)},
        {"NOT/BUF", fa ^ Fa,
         core::gate_difference2(netlist::GateType::Buf, fa, fb, da, db)},
    };
    for (const Row& r : rows) {
      ++checked;
      agreed += (r.direct == r.formula);
    }
  }
  identities_timer.stop();
  mgr.export_metrics(session.metrics(), "bdd.identities");
  session.metrics().counter("tab1.identity_checks").add(checked);
  session.metrics().counter("tab1.identity_agreements").add(agreed);
  std::cout << "Symbolic identity checks: " << agreed << "/" << checked
            << " agree with direct good-XOR-faulty computation\n";
  bench::shape_check(agreed == checked, "all Table 1 identities hold");

  // Part 2: selective trace. Count gate evaluations with and without it
  // across the collapsed stuck-at set of a mid-size circuit.
  for (const char* name : {"c432", "c499"}) {
    obs::ScopedTimer timer = session.phase(name);
    const netlist::Circuit c = netlist::make_benchmark(name);
    netlist::Structure st(c);
    bdd::Manager m2(0);
    core::GoodFunctions good(m2, c);
    core::DifferencePropagator::Options with_opts;
    with_opts.trace = session.trace();
    core::DifferencePropagator with(good, st, with_opts);
    core::DifferencePropagator without(good, st, {/*selective_trace=*/false});

    std::uint64_t eval_with = 0, eval_without = 0;
    const auto faults = fault::collapse_checkpoint_faults(c);
    for (const auto& f : faults) {
      eval_with += with.analyze(f).stats.gates_evaluated;
      eval_without += without.analyze(f).stats.gates_evaluated;
    }
    timer.stop();
    session.metrics().counter("dp.gates_evaluated").add(eval_with);
    session.metrics()
        .counter("tab1.gates_evaluated_without_selective_trace")
        .add(eval_without);
    m2.export_metrics(session.metrics(), std::string("bdd.") + name);
    const double saved =
        1.0 - static_cast<double>(eval_with) /
                  static_cast<double>(eval_without);
    std::cout << name << ": " << faults.size() << " faults; gate evaluations "
              << eval_with << " (selective trace) vs " << eval_without
              << " (all gates) -> " << analysis::TextTable::num(100 * saved, 1)
              << "% avoided\n";
    bench::shape_check(saved > 0.2,
                       std::string(name) +
                           ": selective trace avoids a large share of gate "
                           "evaluations");
  }
  return 0;
}
