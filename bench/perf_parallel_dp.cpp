// Fault-parallel sweep performance: serial DifferencePropagator loop vs
// ParallelEngine on the C432-class circuit's collapsed checkpoint faults.
// Verifies the parallel results are bit-identical to serial, then reports
// the wall-clock speedup. Usage: perf_parallel_dp [--jobs N] (default 4;
// DP_BENCH_JOBS env also honored).
#include <chrono>
#include <cmath>
#include <thread>

#include "common.hpp"
#include "dp/parallel_engine.hpp"
#include "fault/stuck_at.hpp"

using namespace dp;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The scalar outputs every sweep must agree on exactly.
struct Scalars {
  bool detectable;
  double detectability, upper_bound, adherence;
  std::size_t pos_fed, pos_observable;

  bool operator==(const Scalars&) const = default;
};

Scalars scalars(const core::FaultAnalysis& a) {
  return {a.detectable, a.detectability, a.upper_bound,
          a.adherence,  a.pos_fed,       a.pos_observable};
}

}  // namespace

int main(int argc, char** argv) {
  // Document id "parallel_dp" -> BENCH_parallel_dp.json under
  // DP_BENCH_METRICS_DIR: the repo's parallel-sweep perf trajectory.
  bench::Session session("parallel_dp", argc, argv);
  bench::banner("Perf -- fault-parallel Difference Propagation (C432-class)",
                "Per-fault analyses are independent; a private-manager "
                "worker pool scales the sweep with cores, bit-identically.");

  // Default to 4 workers so the speedup check is meaningful even when the
  // common flags leave jobs at the serial default.
  std::size_t jobs = session.jobs_explicit() ? session.options().jobs : 4;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }

  const netlist::Circuit circuit = netlist::make_benchmark("c432");
  const netlist::Structure structure(circuit);
  const std::vector<fault::StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);
  std::cout << "\nCircuit " << circuit.name() << ": " << circuit.num_gates()
            << " gates, " << faults.size()
            << " collapsed checkpoint faults\n";

  // Serial baseline: the pre-engine loop, one manager, one thread.
  obs::ScopedTimer serial_timer = session.phase("serial");
  const auto serial_start = Clock::now();
  std::vector<Scalars> serial;
  serial.reserve(faults.size());
  {
    bdd::Manager manager(0, 32u * 1024 * 1024);
    core::GoodFunctions good(manager, circuit);
    core::DifferencePropagator propagator(good, structure);
    for (const fault::StuckAtFault& f : faults) {
      serial.push_back(scalars(propagator.analyze(f)));
    }
  }
  serial_timer.stop();
  const double serial_s = seconds_since(serial_start);
  std::cout << "serial sweep:   " << analysis::TextTable::num(serial_s, 3)
            << " s (" << analysis::TextTable::num(faults.size() / serial_s, 1)
            << " faults/s)\n";

  // Parallel sweep (engine construction included: building one
  // GoodFunctions per worker is part of the price of the pool).
  obs::ScopedTimer par_timer = session.phase("parallel");
  const auto par_start = Clock::now();
  std::vector<Scalars> parallel(faults.size(),
                                Scalars{false, 0, 0, 0, 0, 0});
  core::ParallelEngine::Options popt;
  popt.jobs = jobs;
  popt.dp.trace = session.trace();
  core::ParallelEngine engine(circuit, structure, popt);
  engine.analyze_each(faults, [&](std::size_t i, core::FaultAnalysis&& a) {
    parallel[i] = scalars(a);
  });
  par_timer.stop();
  const double par_s = seconds_since(par_start);
  std::cout << "parallel sweep: " << analysis::TextTable::num(par_s, 3)
            << " s with --jobs " << jobs << "\n\n";
  engine.stats().print(std::cout);
  session.record_engine(circuit.name(), circuit.num_gates(),
                        circuit.num_inputs(), circuit.num_outputs(),
                        faults.size(),
                        par_s > 0 ? faults.size() / par_s : 0.0,
                        engine.stats());

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!(serial[i] == parallel[i])) ++mismatches;
  }
  const double speedup = par_s > 0 ? serial_s / par_s : 0.0;
  std::cout << "\ncsv:jobs,serial_s,parallel_s,speedup,mismatches\n";
  analysis::write_csv_row(
      std::cout,
      {std::to_string(jobs), analysis::TextTable::num(serial_s, 3),
       analysis::TextTable::num(par_s, 3),
       analysis::TextTable::num(speedup, 2), std::to_string(mismatches)});

  bench::shape_check(mismatches == 0,
                     "parallel scalars bit-identical to serial (" +
                         std::to_string(mismatches) + " mismatches)");
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 2 && jobs >= 2) {
    bench::shape_check(speedup >= 2.0,
                       "speedup >= 2x with --jobs " + std::to_string(jobs) +
                           " (" + analysis::TextTable::num(speedup, 2) +
                           "x on " + std::to_string(hw) + " hw threads)");
  } else {
    std::cout << "[shape SKIP] speedup check needs >= 2 hardware threads "
                 "and --jobs >= 2 (have "
              << hw << " thread(s), jobs " << jobs << "); measured "
              << analysis::TextTable::num(speedup, 2) << "x\n";
  }
  return 0;
}
