// Fault-parallel sweep performance: serial DifferencePropagator loop vs
// ParallelEngine on the C432-class circuit's collapsed checkpoint faults.
// Verifies the parallel results are bit-identical to serial, then reports
// the wall-clock speedup. A second section measures the shared frozen
// forest on c1355/c1908: whole-engine peak live nodes with per-worker
// good-function builds vs one frozen universe (expected >= 2x smaller at
// 4 workers), plus a warm re-sweep on the shared engine. Usage:
// perf_parallel_dp [--jobs N] (default 4; DP_BENCH_JOBS env honored).
#include <chrono>
#include <cmath>
#include <thread>

#include "common.hpp"
#include "dp/parallel_engine.hpp"
#include "fault/stuck_at.hpp"

using namespace dp;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The scalar outputs every sweep must agree on exactly.
struct Scalars {
  bool detectable;
  double detectability, upper_bound, adherence;
  std::size_t pos_fed, pos_observable;

  bool operator==(const Scalars&) const = default;
};

Scalars scalars(const core::FaultAnalysis& a) {
  return {a.detectable, a.detectability, a.upper_bound,
          a.adherence,  a.pos_fed,       a.pos_observable};
}

/// Whole-engine node footprint: the frozen universe (counted once) plus
/// every worker's private peak -- what the engine's dp.peak_live_nodes
/// gauge reports.
std::size_t footprint(const core::ParallelStats& s) {
  std::size_t total = s.frozen_nodes;
  for (const core::WorkerStats& w : s.workers) total += w.peak_live_nodes;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  // Document id "parallel_dp" -> BENCH_parallel_dp.json under
  // DP_BENCH_METRICS_DIR: the repo's parallel-sweep perf trajectory.
  bench::Session session("parallel_dp", argc, argv);
  bench::banner("Perf -- fault-parallel Difference Propagation (C432-class)",
                "Per-fault analyses are independent; a private-manager "
                "worker pool scales the sweep with cores, bit-identically.");

  // Default to 4 workers so the speedup check is meaningful even when the
  // common flags leave jobs at the serial default.
  std::size_t jobs = session.jobs_explicit() ? session.options().jobs : 4;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }

  const netlist::Circuit circuit = netlist::make_benchmark("c432");
  const netlist::Structure structure(circuit);
  const std::vector<fault::StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);
  std::cout << "\nCircuit " << circuit.name() << ": " << circuit.num_gates()
            << " gates, " << faults.size()
            << " collapsed checkpoint faults\n";

  // Serial baseline: the pre-engine loop, one manager, one thread.
  obs::ScopedTimer serial_timer = session.phase("serial");
  const auto serial_start = Clock::now();
  std::vector<Scalars> serial;
  serial.reserve(faults.size());
  {
    bdd::Manager manager(0, 32u * 1024 * 1024);
    core::GoodFunctions good(manager, circuit);
    core::DifferencePropagator propagator(good, structure);
    for (const fault::StuckAtFault& f : faults) {
      serial.push_back(scalars(propagator.analyze(f)));
    }
  }
  serial_timer.stop();
  const double serial_s = seconds_since(serial_start);
  std::cout << "serial sweep:   " << analysis::TextTable::num(serial_s, 3)
            << " s (" << analysis::TextTable::num(faults.size() / serial_s, 1)
            << " faults/s)\n";

  // Parallel sweep (engine construction included: building one
  // GoodFunctions per worker is part of the price of the pool).
  obs::ScopedTimer par_timer = session.phase("parallel");
  const auto par_start = Clock::now();
  std::vector<Scalars> parallel(faults.size(),
                                Scalars{false, 0, 0, 0, 0, 0});
  core::ParallelEngine::Options popt;
  popt.jobs = jobs;
  popt.dp.trace = session.trace();
  core::ParallelEngine engine(circuit, structure, popt);
  engine.analyze_each(faults, [&](std::size_t i, core::FaultAnalysis&& a) {
    parallel[i] = scalars(a);
  });
  par_timer.stop();
  const double par_s = seconds_since(par_start);
  std::cout << "parallel sweep: " << analysis::TextTable::num(par_s, 3)
            << " s with --jobs " << jobs << "\n\n";
  engine.stats().print(std::cout);
  session.record_engine(circuit.name(), circuit.num_gates(),
                        circuit.num_inputs(), circuit.num_outputs(),
                        faults.size(),
                        par_s > 0 ? faults.size() / par_s : 0.0,
                        engine.stats());

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!(serial[i] == parallel[i])) ++mismatches;
  }
  const double speedup = par_s > 0 ? serial_s / par_s : 0.0;
  std::cout << "\ncsv:jobs,serial_s,parallel_s,speedup,mismatches\n";
  analysis::write_csv_row(
      std::cout,
      {std::to_string(jobs), analysis::TextTable::num(serial_s, 3),
       analysis::TextTable::num(par_s, 3),
       analysis::TextTable::num(speedup, 2), std::to_string(mismatches)});

  bench::shape_check(mismatches == 0,
                     "parallel scalars bit-identical to serial (" +
                         std::to_string(mismatches) + " mismatches)");
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 2 && jobs >= 2) {
    bench::shape_check(speedup >= 2.0,
                       "speedup >= 2x with --jobs " + std::to_string(jobs) +
                           " (" + analysis::TextTable::num(speedup, 2) +
                           "x on " + std::to_string(hw) + " hw threads)");
  } else {
    std::cout << "[shape SKIP] speedup check needs >= 2 hardware threads "
                 "and --jobs >= 2 (have "
              << hw << " thread(s), jobs " << jobs << "); measured "
              << analysis::TextTable::num(speedup, 2) << "x\n";
  }

  // ---- Shared frozen forest: node footprint at N workers ----------------
  // With per-worker good-function builds the engine's footprint is
  // jobs x (forest + deltas); with the shared frozen universe it is
  // forest + jobs x deltas. A bounded fault slice keeps the smoke run
  // cheap -- the footprint is dominated by the good-function forests, not
  // by how many faults the sweep then analyzes.
  constexpr std::size_t kFootprintFaults = 128;
  std::cout << "\nShared frozen forest, --jobs " << jobs << " ("
            << kFootprintFaults << "-fault slice per circuit):\n";
  std::cout << "csv:circuit,unshared_nodes,shared_nodes,frozen_nodes,"
               "reduction,cold_s,warm_s,mismatches\n";
  for (const char* name : {"c1355", "c1908"}) {
    const netlist::Circuit c = netlist::make_benchmark(name);
    const netlist::Structure s(c);
    std::vector<fault::StuckAtFault> fs = fault::collapse_checkpoint_faults(c);
    if (fs.size() > kFootprintFaults) fs.resize(kFootprintFaults);

    std::vector<Scalars> unshared_out(fs.size(), Scalars{false, 0, 0, 0, 0, 0});
    core::ParallelEngine::Options uopt;
    uopt.jobs = jobs;
    uopt.shared_forest = false;
    core::ParallelEngine unshared(c, s, uopt);
    unshared.analyze_each(fs, [&](std::size_t i, core::FaultAnalysis&& a) {
      unshared_out[i] = scalars(a);
    });
    const std::size_t unshared_nodes = footprint(unshared.stats());

    std::vector<Scalars> shared_out(fs.size(), Scalars{false, 0, 0, 0, 0, 0});
    core::ParallelEngine::Options sopt;
    sopt.jobs = jobs;
    const auto cold_start = Clock::now();
    core::ParallelEngine shared(c, s, sopt);
    shared.analyze_each(fs, [&](std::size_t i, core::FaultAnalysis&& a) {
      shared_out[i] = scalars(a);
    });
    const double cold_s = seconds_since(cold_start);
    const std::size_t shared_nodes = footprint(shared.stats());
    const std::size_t frozen = shared.stats().frozen_nodes;
    session.record_engine(c.name(), c.num_gates(), c.num_inputs(),
                          c.num_outputs(), fs.size(),
                          cold_s > 0 ? fs.size() / cold_s : 0.0,
                          shared.stats());

    // Warm re-sweep: the engine (forest, workers, caches) is resident, as
    // in the serving daemon; only the per-fault work repeats.
    const auto warm_start = Clock::now();
    shared.analyze_each(fs, [&](std::size_t i, core::FaultAnalysis&& a) {
      shared_out[i] = scalars(a);
    });
    const double warm_s = seconds_since(warm_start);

    std::size_t bad = 0;
    for (std::size_t i = 0; i < fs.size(); ++i) {
      if (!(unshared_out[i] == shared_out[i])) ++bad;
    }
    const double reduction =
        shared_nodes > 0 ? static_cast<double>(unshared_nodes) /
                               static_cast<double>(shared_nodes)
                         : 0.0;
    analysis::write_csv_row(
        std::cout,
        {name, std::to_string(unshared_nodes), std::to_string(shared_nodes),
         std::to_string(frozen), analysis::TextTable::num(reduction, 2),
         analysis::TextTable::num(cold_s, 3),
         analysis::TextTable::num(warm_s, 3), std::to_string(bad)});

    const std::string prefix = std::string("parallel_dp.") + name;
    session.metrics().gauge(prefix + ".unshared.peak_live_nodes")
        .set(static_cast<double>(unshared_nodes));
    session.metrics().gauge(prefix + ".shared.peak_live_nodes")
        .set(static_cast<double>(shared_nodes));
    session.metrics().gauge(prefix + ".shared.frozen_nodes")
        .set(static_cast<double>(frozen));
    session.metrics().gauge(prefix + ".warm.ops_per_second")
        .set(warm_s > 0 ? fs.size() / warm_s : 0.0);

    bench::shape_check(bad == 0,
                       std::string(name) +
                           ": shared-forest scalars bit-identical to "
                           "per-worker builds (" +
                           std::to_string(bad) + " mismatches)");
    if (jobs >= 4) {
      bench::shape_check(2 * shared_nodes <= unshared_nodes,
                         std::string(name) + ": peak live nodes reduced >= "
                                             "2x by the shared forest (" +
                             analysis::TextTable::num(reduction, 2) + "x)");
    } else {
      std::cout << "[shape SKIP] " << name
                << ": footprint reduction check needs --jobs >= 4 (have "
                << jobs << "); measured "
                << analysis::TextTable::num(reduction, 2) << "x\n";
    }
  }
  return 0;
}
