// Section 3 claim: exhaustive simulation "is limited to relatively small
// classes of circuits due to exorbitant computation time requirements",
// while the function-based approach stays tractable. This benchmark times
// exact per-fault analysis both ways as circuit size (input count) grows:
// the exhaustive baseline scales as 2^n, Difference Propagation does not.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "dp/engine.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"

using namespace dp;

namespace {

netlist::Circuit circuit_for(int id) {
  switch (id) {
    case 0: return netlist::make_c17();
    case 1: return netlist::make_full_adder();
    case 2: return netlist::make_c95_analog();
    case 3: return netlist::make_alu181();
    case 4: return netlist::make_ripple_adder(8);   // 17 PIs
    case 5: return netlist::make_ripple_adder(10);  // 21 PIs
    default: return netlist::make_ripple_adder(11); // 23 PIs
  }
}

void BM_ExhaustiveSimulation(benchmark::State& state) {
  const netlist::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  sim::FaultSimulator fs(c);
  const auto faults = fault::collapse_checkpoint_faults(c);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fs.exhaustive_detectability(faults[i++ % faults.size()]));
  }
  state.SetLabel(c.name() + " n=" + std::to_string(c.num_inputs()));
}

void BM_DifferencePropagation(benchmark::State& state) {
  const netlist::Circuit c = circuit_for(static_cast<int>(state.range(0)));
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);
  const auto faults = fault::collapse_checkpoint_faults(c);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.analyze(faults[i++ % faults.size()]));
  }
  state.SetLabel(c.name() + " n=" + std::to_string(c.num_inputs()));
}

// DP also runs where the exhaustive sweep is out of reach entirely
// (the paper's larger circuits have 33-41 inputs).
void BM_DifferencePropagationLarge(benchmark::State& state) {
  const netlist::Circuit c =
      state.range(0) == 0 ? netlist::make_c432_analog()
                          : netlist::make_c499_analog();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);
  const auto faults = fault::collapse_checkpoint_faults(c);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.analyze(faults[i++ % faults.size()]));
  }
  state.SetLabel(c.name() + " n=" + std::to_string(c.num_inputs()) +
                 " (exhaustive would need 2^" +
                 std::to_string(c.num_inputs()) + ")");
}

}  // namespace

BENCHMARK(BM_ExhaustiveSimulation)->DenseRange(0, 6)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DifferencePropagation)->DenseRange(0, 6)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DifferencePropagationLarge)->DenseRange(0, 1)->Unit(benchmark::kMicrosecond);

// Hand-rolled BENCHMARK_MAIN so the common flags (--metrics-json, --trace,
// --jobs) work here too; everything unrecognized passes through to
// google-benchmark untouched.
int main(int argc, char** argv) {
  bench::Session session("perf_dp_vs_exhaustive", argc, argv,
                         /*passthrough_unknown=*/true);
  std::vector<char*> args;
  char arg0_default[] = "perf_dp_vs_exhaustive";
  args.push_back(argc > 0 ? argv[0] : arg0_default);
  for (char* a : session.passthrough_argv()) args.push_back(a);
  int bench_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&bench_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  obs::ScopedTimer timer = session.phase("benchmarks");
  const std::size_t run = ::benchmark::RunSpecifiedBenchmarks();
  timer.stop();
  session.metrics().counter("benchmarks.run").add(run);
  ::benchmark::Shutdown();
  return 0;
}
