// Figure 6: bridging-fault detection probability histograms for C95,
// AND and OR dominance plotted side by side. The paper found the two
// nearly identical -- the logic dominance value matters little.
#include <algorithm>
#include <cmath>

#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("fig6_bf_histograms", argc, argv);
  bench::banner("Figure 6 -- bridging-fault detection histograms (C95)",
                "AND and OR NFBF profiles are very nearly the same; "
                "dominance hardly matters for detectability.");

  const analysis::AnalysisOptions& opt = session.options();
  const netlist::Circuit c = netlist::make_benchmark("c95");

  std::map<fault::BridgeType, analysis::Histogram> hists;
  for (fault::BridgeType type :
       {fault::BridgeType::And, fault::BridgeType::Or}) {
    obs::ScopedTimer timer = session.phase(fault::to_string(type));
    const analysis::CircuitProfile p = analysis::analyze_bridging(c, type, opt);
    timer.stop();
    session.record_profile(p);
    analysis::Histogram h = p.detectability_histogram(20);
    analysis::print_histogram(
        std::cout, h,
        std::string("Fault proportion vs detection probability (") +
            fault::to_string(type) + " NFBFs)",
        "detection probability");
    std::cout << "csv:type,bin_lo,bin_hi,proportion\n";
    for (std::size_t b = 0; b < h.num_bins(); ++b) {
      analysis::write_csv_row(
          std::cout, {fault::to_string(type),
                      analysis::TextTable::num(h.bin_lo(b), 3),
                      analysis::TextTable::num(h.bin_hi(b), 3),
                      analysis::TextTable::num(h.proportion(b), 4)});
    }
    std::cout << "\n";
    hists.emplace(type, std::move(h));
  }

  // Shape: L1 distance between the AND and OR histograms is small.
  const analysis::Histogram& ha = hists.at(fault::BridgeType::And);
  const analysis::Histogram& ho = hists.at(fault::BridgeType::Or);
  double l1 = 0;
  for (std::size_t b = 0; b < ha.num_bins(); ++b) {
    l1 += std::abs(ha.proportion(b) - ho.proportion(b));
  }
  bench::shape_check(l1 < 0.8, "AND and OR profiles very nearly the same "
                               "(L1 distance " +
                                   analysis::TextTable::num(l1, 3) + ")");
  return 0;
}
