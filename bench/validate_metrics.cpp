// Validator/aggregator for dp.metrics.v1 documents (the bench_smoke
// backstop): every file must parse with the obs JSON parser and carry the
// required keys, so a refactor that silently breaks the exporter fails
// the smoke suite instead of producing unreadable telemetry.
//
//   validate_metrics [--summary PATH] FILE...
//
// With --summary, an aggregate document (one record per input file plus
// cross-bench totals) is written to PATH.
#include <iostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using dp::obs::JsonValue;

namespace {

int g_failures = 0;

void fail(const std::string& file, const std::string& what) {
  std::cerr << "FAIL " << file << ": " << what << "\n";
  ++g_failures;
}

/// Checks one document; returns a summary record (null on hard failure).
JsonValue validate(const std::string& file) {
  JsonValue doc;
  try {
    doc = dp::obs::read_json_file(file);
  } catch (const std::exception& e) {
    fail(file, e.what());
    return JsonValue();
  }
  if (!doc.is_object()) {
    fail(file, "top-level value is not an object");
    return JsonValue();
  }

  // Schema gate first, and hard: a document from a different (or future)
  // schema must be rejected outright, not best-effort scanned -- every
  // downstream check here assumes the dp.metrics.v1 shape.
  const JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string()) {
    fail(file, "missing string key 'schema' (expected \"dp.metrics.v1\")");
    return JsonValue();
  }
  if (schema->as_string() != "dp.metrics.v1") {
    fail(file, "unsupported schema \"" + schema->as_string() +
                   "\" (this validator understands \"dp.metrics.v1\")");
    return JsonValue();
  }

  // Benches write "bench", the example CLIs write "tool".
  const bool is_bench = doc.contains("bench");
  if (!is_bench && !doc.contains("tool")) {
    fail(file, "missing required key 'bench' (or 'tool')");
  }
  if (is_bench && !doc.contains("jobs")) fail(file, "missing key 'jobs'");

  const JsonValue* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_object()) {
    fail(file, "missing 'metrics' object");
    return JsonValue();
  }
  for (const char* section :
       {"counters", "gauges", "timers", "histograms"}) {
    const JsonValue* s = metrics->find(section);
    if (!s || !s->is_object()) {
      fail(file, std::string("metrics.") + section + " missing");
    }
  }
  if (is_bench) {
    const JsonValue* timers = metrics->find("timers");
    if (timers && timers->is_object() && !timers->contains("phase.total")) {
      fail(file, "timers lack the mandatory 'phase.total' entry");
    }
    const JsonValue* circuits = doc.find("circuits");
    if (!circuits || !circuits->is_array()) {
      fail(file, "missing 'circuits' array");
    }
  }

  // Summary record: identity, workload counters, total wall clock.
  JsonValue rec = JsonValue::object();
  rec["file"] = file;
  if (const JsonValue* id = doc.find(is_bench ? "bench" : "tool")) {
    rec[is_bench ? "bench" : "tool"] = *id;
  }
  if (const JsonValue* jobs = doc.find("jobs")) rec["jobs"] = *jobs;
  if (const JsonValue* circuits = doc.find("circuits")) {
    rec["circuits"] = circuits->size();
  }
  if (const JsonValue* timers = metrics->find("timers")) {
    if (const JsonValue* total = timers->find("phase.total")) {
      rec["wall_seconds"] = total->at("total_s");
    }
  }
  if (const JsonValue* counters = metrics->find("counters")) {
    for (const char* key :
         {"dp.faults_analyzed", "dp.gates_evaluated", "dp.gates_skipped"}) {
      if (const JsonValue* c = counters->find(key)) rec[key] = *c;
    }
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  std::string summary_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--summary") {
      if (i + 1 >= argc) {
        std::cerr << "error: --summary requires a value\n";
        return 2;
      }
      summary_path = argv[++i];
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: validate_metrics [--summary PATH] FILE...\n";
    return 2;
  }

  JsonValue documents = JsonValue::array();
  long long faults = 0, evaluated = 0, skipped = 0;
  for (const std::string& file : files) {
    JsonValue rec = validate(file);
    if (rec.is_null()) continue;
    if (const JsonValue* v = rec.find("dp.faults_analyzed")) {
      faults += v->as_int();
    }
    if (const JsonValue* v = rec.find("dp.gates_evaluated")) {
      evaluated += v->as_int();
    }
    if (const JsonValue* v = rec.find("dp.gates_skipped")) {
      skipped += v->as_int();
    }
    documents.push_back(std::move(rec));
    std::cout << "ok   " << file << "\n";
  }

  if (!summary_path.empty()) {
    JsonValue summary = JsonValue::object();
    summary["schema"] = "dp.metrics.summary.v1";
    summary["documents"] = documents.size();
    summary["failures"] = g_failures;
    JsonValue totals = JsonValue::object();
    totals["dp.faults_analyzed"] = faults;
    totals["dp.gates_evaluated"] = evaluated;
    totals["dp.gates_skipped"] = skipped;
    summary["totals"] = std::move(totals);
    summary["benches"] = std::move(documents);
    std::string error;
    if (!dp::obs::write_json_file_atomic(summary_path, summary, &error)) {
      std::cerr << "FAIL writing summary " << summary_path << ": " << error
                << "\n";
      ++g_failures;
    } else {
      std::cout << "[metrics] wrote " << summary_path << "\n";
    }
  }

  if (g_failures > 0) {
    std::cerr << g_failures << " validation failure(s)\n";
    return 1;
  }
  return 0;
}
