// Validator/aggregator for dp.metrics.v1, dp.fuzzreport.v1, dp.trace.v1,
// dp.served.v1, and dp.ndetect.v1 documents (the bench_smoke backstop):
// every file must parse
// with the obs JSON parser and carry the required keys, so a refactor
// that silently breaks an exporter fails the smoke suite instead of
// producing unreadable telemetry. A fuzz report additionally fails
// validation outright when it records any discrepancy — a red fuzz
// campaign must never pass the smoke tier just because its JSON was
// well-formed. Dropped trace events/spans (ring-buffer wrap) surface in
// the summary totals and fail the run under --strict — a smoke tier must
// never silently report partial attribution as complete.
//
//   validate_metrics [--summary PATH]
//                    [--baseline PATH [--tolerance X] [--node-tolerance Y]
//                     [--strict]] FILE...
//
// With --summary, an aggregate document (one record per input file plus
// cross-bench totals) is written to PATH.
//
// With --baseline, every input document whose "bench" id matches the
// baseline document's is additionally diffed against it as a perf
// regression guard: lower-is-better gauges (ns_per_op, peak_live_nodes,
// kernel wall clock) may grow at most `tolerance`-fold, higher-is-better
// gauges (ops_per_second, cache_hit_rate) may shrink at most
// `tolerance`-fold. The timing tolerance is deliberately generous
// (default 3x) because smoke runs share the machine with the build.
// Node-count gauges (peak/frozen/per-worker live nodes) are load-
// independent, so they get their own much tighter `--node-tolerance`
// (default 1.5x) -- a shared-forest regression that doubles the node
// footprint cannot hide inside the timing slack. Violations WARN by
// default and only fail the run with --strict.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using dp::obs::JsonValue;

namespace {

int g_failures = 0;

void fail(const std::string& file, const std::string& what) {
  std::cerr << "FAIL " << file << ": " << what << "\n";
  ++g_failures;
}

/// dp.fuzzreport.v1: the dpfuzz campaign document. Shape-checked key by
/// key, and the discrepancy count doubles as a result gate.
JsonValue validate_fuzz_report(const std::string& file,
                               const JsonValue& doc) {
  for (const char* key : {"tool", "seed", "cases", "cases_run",
                          "faults_checked", "vectors_checked",
                          "discrepancies", "jobs"}) {
    const JsonValue* v = doc.find(key);
    if (!v) {
      fail(file, std::string("missing required key '") + key + "'");
    } else if (key == std::string("tool") ? !v->is_string()
                                          : !v->is_number()) {
      fail(file, std::string("key '") + key + "' has the wrong type");
    }
  }
  const JsonValue* failures = doc.find("failures");
  if (!failures || !failures->is_array()) {
    fail(file, "missing 'failures' array");
  }
  const JsonValue* oracles = doc.find("oracles");
  if (!oracles || !oracles->is_object()) {
    fail(file, "missing 'oracles' object");
  }

  long long discrepancies = 0;
  if (const JsonValue* d = doc.find("discrepancies")) {
    if (d->is_number()) discrepancies = d->as_int();
  }
  if (discrepancies > 0) {
    fail(file, "fuzz campaign recorded " + std::to_string(discrepancies) +
                   " discrepancy(ies)");
  }
  if (failures && failures->is_array() && failures->size() > 0 &&
      discrepancies == 0) {
    fail(file, "failures present but discrepancy count is zero");
  }

  JsonValue rec = JsonValue::object();
  rec["file"] = file;
  if (const JsonValue* tool = doc.find("tool")) rec["tool"] = *tool;
  for (const char* key :
       {"cases_run", "faults_checked", "vectors_checked", "discrepancies"}) {
    if (const JsonValue* v = doc.find(key)) {
      rec[std::string("fuzz.") + key] = *v;
    }
  }
  return rec;
}

/// dp.trace.v1: the --trace-out span/profile document. Shape-checked so
/// Perfetto-bound traces and the dptrace analyzer always see the same
/// contract: identity, wall clock, a spans section with drop accounting,
/// and the Chrome trace-event mirror.
JsonValue validate_trace(const std::string& file, const JsonValue& doc) {
  const bool is_bench = doc.contains("bench");
  if (!is_bench && !doc.contains("tool")) {
    fail(file, "missing required key 'bench' (or 'tool')");
  }
  const JsonValue* wall = doc.find("wall_seconds");
  if (!wall || !wall->is_number()) {
    fail(file, "missing number key 'wall_seconds'");
  }
  const JsonValue* spans = doc.find("spans");
  if (!spans || !spans->is_object()) {
    fail(file, "missing 'spans' object");
    return JsonValue();
  }
  for (const char* key : {"capacity", "threads", "recorded", "dropped"}) {
    const JsonValue* v = spans->find(key);
    if (!v || !v->is_number()) {
      fail(file, std::string("spans.") + key + " missing or non-numeric");
    }
  }
  const JsonValue* events = spans->find("events");
  if (!events || !events->is_array()) {
    fail(file, "missing 'spans.events' array");
  }
  const JsonValue* trace_events = doc.find("traceEvents");
  if (!trace_events || !trace_events->is_array()) {
    fail(file, "missing 'traceEvents' array (Perfetto mirror)");
  }

  JsonValue rec = JsonValue::object();
  rec["file"] = file;
  if (const JsonValue* id = doc.find(is_bench ? "bench" : "tool")) {
    rec[is_bench ? "bench" : "tool"] = *id;
  }
  if (wall && wall->is_number()) rec["wall_seconds"] = *wall;
  if (const JsonValue* recorded = spans->find("recorded")) {
    rec["trace.spans"] = *recorded;
  }
  if (const JsonValue* dropped = spans->find("dropped")) {
    rec["trace.dropped"] = *dropped;
  }
  return rec;
}

/// dp.served.v1: dpload's serving-bench document. The shape gate covers
/// the load parameters, the warm/cold latency split (both blocks must
/// carry count/p50/p99), and the structured error tally -- the contract
/// the serving quickstart and CI dashboards read. A dpload run that
/// completed zero requests fails outright: an all-errors run must not
/// pass the smoke tier on JSON well-formedness alone.
JsonValue validate_served(const std::string& file, const JsonValue& doc) {
  const JsonValue* tool = doc.find("tool");
  if (!tool || !tool->is_string()) {
    fail(file, "missing string key 'tool'");
  }
  for (const char* key : {"target_qps", "achieved_qps", "requests", "ok"}) {
    const JsonValue* v = doc.find(key);
    if (!v || !v->is_number()) {
      fail(file, std::string("missing number key '") + key + "'");
    }
  }
  const JsonValue* latency = doc.find("latency");
  if (!latency || !latency->is_object()) {
    fail(file, "missing 'latency' object");
    return JsonValue();
  }
  for (const char* phase : {"cold", "warm"}) {
    const JsonValue* block = latency->find(phase);
    if (!block || !block->is_object()) {
      fail(file, std::string("missing 'latency.") + phase + "' object");
      continue;
    }
    for (const char* key : {"count", "p50_ms", "p99_ms"}) {
      const JsonValue* v = block->find(key);
      if (!v || !v->is_number()) {
        fail(file, std::string("latency.") + phase + "." + key +
                       " missing or non-numeric");
      }
    }
  }
  const JsonValue* errors = doc.find("errors");
  if (!errors || !errors->is_object()) {
    fail(file, "missing 'errors' object");
  }
  if (const JsonValue* ok = doc.find("ok")) {
    if (ok->is_number() && ok->as_int() == 0) {
      fail(file, "load run completed zero requests");
    }
  }

  JsonValue rec = JsonValue::object();
  rec["file"] = file;
  if (tool && tool->is_string()) rec["tool"] = *tool;
  for (const char* key : {"requests", "ok", "target_qps", "achieved_qps"}) {
    if (const JsonValue* v = doc.find(key)) {
      rec[std::string("served.") + key] = *v;
    }
  }
  for (const char* phase : {"cold", "warm"}) {
    if (const JsonValue* block = latency->find(phase)) {
      if (block->is_object()) {
        if (const JsonValue* p50 = block->find("p50_ms")) {
          rec[std::string("served.") + phase + "_p50_ms"] = *p50;
        }
      }
    }
  }
  return rec;
}

/// dp.ndetect.v1: the exact n-detection report (atpg_tool --ndetect-json,
/// dpserved's ndetect handler). Beyond key shape, the per-fault detection
/// counts are re-summed and must equal the summary total exactly -- every
/// number in the document is an integer BDD satcount, so any drift is a
/// real bug, not rounding. The target-meeting tally is likewise
/// recomputed from the per-fault records (note an undetectable fault
/// meets its quota of min(n, |CTS|) = 0 vacuously, so the tally can
/// legitimately exceed summary.detectable).
JsonValue validate_ndetect(const std::string& file, const JsonValue& doc) {
  const JsonValue* circuit = doc.find("circuit");
  if (!circuit || !circuit->is_string()) {
    fail(file, "missing string key 'circuit'");
  }
  for (const char* key : {"n", "num_inputs", "vectors", "minted"}) {
    const JsonValue* v = doc.find(key);
    if (!v || !v->is_number()) {
      fail(file, std::string("missing number key '") + key + "'");
    }
  }
  const JsonValue* summary = doc.find("summary");
  if (!summary || !summary->is_object()) {
    fail(file, "missing 'summary' object");
    return JsonValue();
  }
  for (const char* key :
       {"faults", "detectable", "meeting_target", "detections"}) {
    const JsonValue* v = summary->find(key);
    if (!v || !v->is_number()) {
      fail(file, std::string("summary.") + key + " missing or non-numeric");
    }
  }
  const JsonValue* faults = doc.find("faults");
  if (!faults || !faults->is_array()) {
    fail(file, "missing 'faults' array");
    return JsonValue();
  }

  // Exact cross-checks: integer satcounts admit no tolerance.
  long long detections_sum = 0;
  long long meeting_count = 0;
  for (std::size_t i = 0; i < faults->size(); ++i) {
    const JsonValue& f = faults->at(i);
    const JsonValue* d = f.is_object() ? f.find("detections") : nullptr;
    const JsonValue* t = f.is_object() ? f.find("target") : nullptr;
    if (!d || !d->is_number() || !t || !t->is_number()) {
      fail(file, "faults[" + std::to_string(i) +
                     "].detections/target missing or non-numeric");
      return JsonValue();
    }
    detections_sum += d->as_int();
    // An undetectable fault's quota is min(n, |CTS|) = 0, met vacuously,
    // so meeting_target is recomputed per record, not bounded by
    // summary.detectable.
    if (d->as_int() >= t->as_int()) ++meeting_count;
  }
  if (const JsonValue* count = summary->find("faults")) {
    if (count->is_number() &&
        count->as_int() != static_cast<long long>(faults->size())) {
      fail(file, "summary.faults disagrees with the faults array length");
    }
  }
  if (const JsonValue* total = summary->find("detections")) {
    if (total->is_number() && total->as_int() != detections_sum) {
      fail(file, "summary.detections (" + std::to_string(total->as_int()) +
                     ") != sum of per-fault counts (" +
                     std::to_string(detections_sum) + ")");
    }
  }
  if (const JsonValue* meeting = summary->find("meeting_target")) {
    if (meeting->is_number() && meeting->as_int() != meeting_count) {
      fail(file, "summary.meeting_target (" +
                     std::to_string(meeting->as_int()) +
                     ") != count of faults with detections >= target (" +
                     std::to_string(meeting_count) + ")");
    }
  }

  JsonValue rec = JsonValue::object();
  rec["file"] = file;
  if (circuit && circuit->is_string()) rec["circuit"] = *circuit;
  for (const char* key : {"n", "vectors", "minted"}) {
    if (const JsonValue* v = doc.find(key)) {
      rec[std::string("ndetect.") + key] = *v;
    }
  }
  for (const char* key : {"faults", "detectable", "meeting_target",
                          "detections"}) {
    if (const JsonValue* v = summary->find(key)) {
      rec[std::string("ndetect.") + key] = *v;
    }
  }
  return rec;
}

/// Checks one document; returns a summary record (null on hard failure).
JsonValue validate(const std::string& file) {
  JsonValue doc;
  try {
    doc = dp::obs::read_json_file(file);
  } catch (const std::exception& e) {
    fail(file, e.what());
    return JsonValue();
  }
  if (!doc.is_object()) {
    fail(file, "top-level value is not an object");
    return JsonValue();
  }

  // Schema gate first, and hard: a document from a different (or future)
  // schema must be rejected outright, not best-effort scanned -- every
  // downstream check here assumes the dp.metrics.v1 shape.
  const JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string()) {
    fail(file, "missing string key 'schema' (expected \"dp.metrics.v1\")");
    return JsonValue();
  }
  if (schema->as_string() == "dp.fuzzreport.v1") {
    return validate_fuzz_report(file, doc);
  }
  if (schema->as_string() == "dp.trace.v1") {
    return validate_trace(file, doc);
  }
  if (schema->as_string() == "dp.served.v1") {
    return validate_served(file, doc);
  }
  if (schema->as_string() == "dp.ndetect.v1") {
    return validate_ndetect(file, doc);
  }
  if (schema->as_string() != "dp.metrics.v1") {
    fail(file, "unsupported schema \"" + schema->as_string() +
                   "\" (this validator understands \"dp.metrics.v1\", "
                   "\"dp.fuzzreport.v1\", \"dp.trace.v1\", "
                   "\"dp.served.v1\", and \"dp.ndetect.v1\")");
    return JsonValue();
  }

  // Benches write "bench", the example CLIs write "tool".
  const bool is_bench = doc.contains("bench");
  if (!is_bench && !doc.contains("tool")) {
    fail(file, "missing required key 'bench' (or 'tool')");
  }
  if (is_bench && !doc.contains("jobs")) fail(file, "missing key 'jobs'");

  const JsonValue* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_object()) {
    fail(file, "missing 'metrics' object");
    return JsonValue();
  }
  for (const char* section :
       {"counters", "gauges", "timers", "histograms"}) {
    const JsonValue* s = metrics->find(section);
    if (!s || !s->is_object()) {
      fail(file, std::string("metrics.") + section + " missing");
    }
  }
  if (is_bench) {
    const JsonValue* timers = metrics->find("timers");
    if (timers && timers->is_object() && !timers->contains("phase.total")) {
      fail(file, "timers lack the mandatory 'phase.total' entry");
    }
    const JsonValue* circuits = doc.find("circuits");
    if (!circuits || !circuits->is_array()) {
      fail(file, "missing 'circuits' array");
    }
  }

  // Summary record: identity, workload counters, total wall clock.
  JsonValue rec = JsonValue::object();
  rec["file"] = file;
  if (const JsonValue* id = doc.find(is_bench ? "bench" : "tool")) {
    rec[is_bench ? "bench" : "tool"] = *id;
  }
  if (const JsonValue* jobs = doc.find("jobs")) rec["jobs"] = *jobs;
  if (const JsonValue* circuits = doc.find("circuits")) {
    rec["circuits"] = circuits->size();
  }
  if (const JsonValue* timers = metrics->find("timers")) {
    if (const JsonValue* total = timers->find("phase.total")) {
      rec["wall_seconds"] = total->at("total_s");
    }
  }
  if (const JsonValue* counters = metrics->find("counters")) {
    for (const char* key :
         {"dp.faults_analyzed", "dp.gates_evaluated", "dp.gates_skipped"}) {
      if (const JsonValue* c = counters->find(key)) rec[key] = *c;
    }
  }
  // An embedded --trace event buffer carries its own drop counter; lift
  // it into the record so the summary's drop accounting covers both the
  // per-fault trace ring and the span rings.
  if (const JsonValue* trace = doc.find("trace")) {
    if (const JsonValue* dropped = trace->find("dropped")) {
      rec["trace.dropped"] = *dropped;
    }
    if (const JsonValue* recorded = trace->find("recorded")) {
      rec["trace.spans"] = *recorded;
    }
  }
  // Shared-forest footprint gauges (exact keys): whole-engine peak live
  // nodes, the frozen universe size, and the largest per-worker private
  // pool. Lifted so the summary totals expose the memory story the
  // shared-kernel optimisation is about.
  if (const JsonValue* gauges = metrics->find("gauges")) {
    for (const char* key : {"dp.peak_live_nodes", "dp.frozen_nodes",
                            "dp.private_nodes_per_worker_max"}) {
      if (const JsonValue* v = gauges->find(key)) {
        if (v->is_number()) rec[key] = *v;
      }
    }
  }
  // Complement-edge kernel gauges, summed across exporters (the DP
  // engine's "dp." prefix, perf_bdd_ops's "bdd." prefix): O(1) negations
  // and commutative cache canonicalization swaps.
  if (const JsonValue* gauges = metrics->find("gauges")) {
    for (const char* suffix :
         {"negations_constant_time", "cache_canonical_swaps"}) {
      double sum = 0.0;
      bool present = false;
      for (const auto& [key, value] : gauges->members()) {
        if (!value.is_number()) continue;
        const std::string want = std::string(".") + suffix;
        if (key.size() > want.size() &&
            key.compare(key.size() - want.size(), want.size(), want) == 0) {
          sum += value.as_double();
          present = true;
        }
      }
      if (present) rec[suffix] = sum;
    }
  }
  return rec;
}

/// Suffix-based direction rules for the regression guard. Keys that match
/// neither direction are not compared.
enum class Direction { LowerBetter, HigherBetter, Skip };

bool key_ends_with(const std::string& key, const char* suffix) {
  const std::string s(suffix);
  return key.size() >= s.size() &&
         key.compare(key.size() - s.size(), s.size(), s) == 0;
}

Direction direction_of(const std::string& key) {
  auto ends_with = [&](const char* suffix) {
    return key_ends_with(key, suffix);
  };
  if (ends_with(".ns_per_op") || ends_with(".peak_live_nodes") ||
      ends_with(".total_nodes") || ends_with(".kernel_wall_seconds") ||
      ends_with(".frozen_nodes") ||
      ends_with(".private_nodes_per_worker_max")) {
    return Direction::LowerBetter;
  }
  if (ends_with(".ops_per_second") || ends_with(".cache_hit_rate")) {
    return Direction::HigherBetter;
  }
  return Direction::Skip;
}

/// Node-count gauges are deterministic per workload (no machine-load
/// noise), so the guard holds them to the tighter --node-tolerance.
bool is_node_gauge(const std::string& key) {
  return key_ends_with(key, ".peak_live_nodes") ||
         key_ends_with(key, ".total_nodes") ||
         key_ends_with(key, ".frozen_nodes") ||
         key_ends_with(key, ".private_nodes_per_worker_max");
}

/// Diffs the comparable gauges of `fresh` against `baseline`. Returns the
/// number of tolerance violations (all are printed either way).
int compare_gauges(const std::string& file, const JsonValue& fresh,
                   const JsonValue& baseline, double tolerance,
                   double node_tolerance) {
  const JsonValue* base_metrics = baseline.find("metrics");
  const JsonValue* fresh_metrics = fresh.find("metrics");
  const JsonValue* base_gauges =
      base_metrics ? base_metrics->find("gauges") : nullptr;
  const JsonValue* fresh_gauges =
      fresh_metrics ? fresh_metrics->find("gauges") : nullptr;
  if (!base_gauges || !base_gauges->is_object() || !fresh_gauges ||
      !fresh_gauges->is_object()) {
    fail(file, "baseline comparison needs metrics.gauges in both documents");
    return 0;
  }

  int violations = 0, compared = 0;
  for (const auto& [key, base_value] : base_gauges->members()) {
    const Direction dir = direction_of(key);
    if (dir == Direction::Skip || !base_value.is_number()) continue;
    const JsonValue* fresh_value = fresh_gauges->find(key);
    if (!fresh_value || !fresh_value->is_number()) continue;
    const double base = base_value.as_double();
    const double now = fresh_value->as_double();
    if (!(base > 0.0)) continue;  // degenerate baseline: nothing to guard
    ++compared;
    const double tol = is_node_gauge(key) ? node_tolerance : tolerance;
    const bool ok = dir == Direction::LowerBetter ? now <= base * tol
                                                  : now >= base / tol;
    std::cout << (ok ? "perf ok   " : "perf WARN ") << key << ": baseline "
              << base << ", fresh " << now << " ("
              << (dir == Direction::LowerBetter ? "lower" : "higher")
              << " is better, tolerance " << tol << "x)\n";
    if (!ok) ++violations;
  }
  if (compared == 0) {
    fail(file, "baseline comparison matched no gauges (stale baseline?)");
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  std::string summary_path, baseline_path;
  double tolerance = 3.0;
  double node_tolerance = 1.5;
  bool strict = false;
  std::vector<std::string> files;
  auto value_of = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << flag << " requires a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--summary") {
      summary_path = value_of(i, a);
    } else if (a == "--baseline") {
      baseline_path = value_of(i, a);
    } else if (a == "--tolerance") {
      tolerance = std::atof(value_of(i, a));
      if (!(tolerance >= 1.0)) {
        std::cerr << "error: --tolerance must be >= 1.0\n";
        return 2;
      }
    } else if (a == "--node-tolerance") {
      node_tolerance = std::atof(value_of(i, a));
      if (!(node_tolerance >= 1.0)) {
        std::cerr << "error: --node-tolerance must be >= 1.0\n";
        return 2;
      }
    } else if (a == "--strict") {
      strict = true;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: validate_metrics [--summary PATH] "
                 "[--baseline PATH [--tolerance X] [--node-tolerance Y] "
                 "[--strict]] FILE...\n";
    return 2;
  }

  JsonValue baseline;
  std::string baseline_bench;
  if (!baseline_path.empty()) {
    try {
      baseline = dp::obs::read_json_file(baseline_path);
      baseline_bench = baseline.at("bench").as_string();
    } catch (const std::exception& e) {
      std::cerr << "error: unreadable baseline " << baseline_path << ": "
                << e.what() << "\n";
      return 2;
    }
  }

  JsonValue documents = JsonValue::array();
  long long faults = 0, evaluated = 0, skipped = 0;
  long long fuzz_cases = 0, fuzz_faults = 0, fuzz_discrepancies = 0;
  long long trace_spans = 0, trace_dropped = 0;
  long long served_requests = 0, served_ok = 0;
  long long ndetect_faults = 0, ndetect_detections = 0, ndetect_minted = 0;
  double negations = 0.0, canonical_swaps = 0.0;
  double peak_nodes = 0.0, frozen_nodes = 0.0, private_worker_max = 0.0;
  int perf_violations = 0;
  for (const std::string& file : files) {
    const int failures_before = g_failures;
    JsonValue rec = validate(file);
    if (rec.is_null()) continue;
    if (const JsonValue* v = rec.find("fuzz.cases_run")) {
      fuzz_cases += v->as_int();
    }
    if (const JsonValue* v = rec.find("fuzz.faults_checked")) {
      fuzz_faults += v->as_int();
    }
    if (const JsonValue* v = rec.find("fuzz.discrepancies")) {
      fuzz_discrepancies += v->as_int();
    }
    if (const JsonValue* v = rec.find("trace.spans")) {
      trace_spans += v->as_int();
    }
    if (const JsonValue* v = rec.find("trace.dropped")) {
      trace_dropped += v->as_int();
    }
    if (const JsonValue* v = rec.find("served.requests")) {
      served_requests += v->as_int();
    }
    if (const JsonValue* v = rec.find("served.ok")) {
      served_ok += v->as_int();
    }
    if (const JsonValue* v = rec.find("ndetect.faults")) {
      ndetect_faults += v->as_int();
    }
    if (const JsonValue* v = rec.find("ndetect.detections")) {
      ndetect_detections += v->as_int();
    }
    if (const JsonValue* v = rec.find("ndetect.minted")) {
      ndetect_minted += v->as_int();
    }
    if (const JsonValue* v = rec.find("dp.faults_analyzed")) {
      faults += v->as_int();
    }
    if (const JsonValue* v = rec.find("dp.gates_evaluated")) {
      evaluated += v->as_int();
    }
    if (const JsonValue* v = rec.find("dp.gates_skipped")) {
      skipped += v->as_int();
    }
    if (const JsonValue* v = rec.find("negations_constant_time")) {
      negations += v->as_double();
    }
    if (const JsonValue* v = rec.find("cache_canonical_swaps")) {
      canonical_swaps += v->as_double();
    }
    if (const JsonValue* v = rec.find("dp.peak_live_nodes")) {
      peak_nodes += v->as_double();
    }
    if (const JsonValue* v = rec.find("dp.frozen_nodes")) {
      frozen_nodes += v->as_double();
    }
    if (const JsonValue* v = rec.find("dp.private_nodes_per_worker_max")) {
      private_worker_max += v->as_double();
    }
    if (!baseline_bench.empty()) {
      const JsonValue* bench = rec.find("bench");
      if (bench && bench->is_string() &&
          bench->as_string() == baseline_bench) {
        perf_violations += compare_gauges(file, dp::obs::read_json_file(file),
                                          baseline, tolerance,
                                          node_tolerance);
      }
    }
    documents.push_back(std::move(rec));
    if (g_failures == failures_before) std::cout << "ok   " << file << "\n";
  }

  if (trace_dropped > 0) {
    std::cerr << trace_dropped << " trace event(s)/span(s) dropped to ring "
              << "wrap across " << files.size() << " file(s)"
              << (strict ? "" : " (warning only; pass --strict to fail)")
              << "\n";
    if (strict) ++g_failures;
  }
  if (perf_violations > 0) {
    std::cerr << perf_violations << " perf gauge(s) beyond " << tolerance
              << "x of baseline " << baseline_path
              << (strict ? "" : " (warning only; pass --strict to fail)")
              << "\n";
    if (strict) g_failures += perf_violations;
  }

  if (!summary_path.empty()) {
    JsonValue summary = JsonValue::object();
    summary["schema"] = "dp.metrics.summary.v1";
    summary["documents"] = documents.size();
    summary["failures"] = g_failures;
    JsonValue totals = JsonValue::object();
    totals["dp.faults_analyzed"] = faults;
    totals["dp.gates_evaluated"] = evaluated;
    totals["dp.gates_skipped"] = skipped;
    totals["negations_constant_time"] = negations;
    totals["cache_canonical_swaps"] = canonical_swaps;
    totals["dp.peak_live_nodes"] = peak_nodes;
    totals["dp.frozen_nodes"] = frozen_nodes;
    totals["dp.private_nodes_per_worker_max"] = private_worker_max;
    totals["trace.spans"] = trace_spans;
    totals["trace.dropped"] = trace_dropped;
    totals["fuzz.cases_run"] = fuzz_cases;
    totals["fuzz.faults_checked"] = fuzz_faults;
    totals["fuzz.discrepancies"] = fuzz_discrepancies;
    totals["served.requests"] = served_requests;
    totals["served.ok"] = served_ok;
    totals["ndetect.faults"] = ndetect_faults;
    totals["ndetect.detections"] = ndetect_detections;
    totals["ndetect.minted"] = ndetect_minted;
    summary["totals"] = std::move(totals);
    summary["benches"] = std::move(documents);
    std::string error;
    if (!dp::obs::write_json_file_atomic(summary_path, summary, &error)) {
      std::cerr << "FAIL writing summary " << summary_path << ": " << error
                << "\n";
      ++g_failures;
    } else {
      std::cout << "[metrics] wrote " << summary_path << "\n";
    }
  }

  if (g_failures > 0) {
    std::cerr << g_failures << " validation failure(s)\n";
    return 1;
  }
  return 0;
}
