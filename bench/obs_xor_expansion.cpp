// Section 4.1 observation: C1355 is C499 with XORs expanded into their
// four-NAND equivalents -- identical functions -- yet detectability still
// decreases with the added circuitry. "The desirability of minimal designs
// due to testability concerns is thus established."
#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("obs_xor_expansion", argc, argv);
  bench::banner("Observation -- XOR expansion lowers testability (C499 vs "
                "C1355)",
                "Same PO functions, more gates, lower detectability: minimal "
                "designs are more testable.");

  const netlist::Circuit c499 = netlist::make_benchmark("c499");
  const netlist::Circuit c1355 = netlist::make_benchmark("c1355");
  obs::ScopedTimer t499 = session.phase("c499");
  const analysis::CircuitProfile p499 =
      analysis::analyze_stuck_at(c499, session.options());
  t499.stop();
  obs::ScopedTimer t1355 = session.phase("c1355");
  const analysis::CircuitProfile p1355 =
      analysis::analyze_stuck_at(c1355, session.options());
  t1355.stop();
  session.record_profile(p499);
  session.record_profile(p1355);

  analysis::TextTable table({"circuit", "gates", "faults", "mean det",
                             "mean det/#POs", "undetectable"});
  for (const analysis::CircuitProfile* p : {&p499, &p1355}) {
    table.add_row({p->circuit, std::to_string(p->netlist_size),
                   std::to_string(p->faults.size()),
                   analysis::TextTable::num(p->mean_detectability_detectable()),
                   analysis::TextTable::num(p->mean_detectability_per_po(), 5),
                   std::to_string(p->faults.size() - p->detectable_count())});
  }
  table.print(std::cout);
  std::cout << "csv:circuit,gates,mean_det,mean_det_per_po\n";
  for (const analysis::CircuitProfile* p : {&p499, &p1355}) {
    analysis::write_csv_row(
        std::cout,
        {p->circuit, std::to_string(p->netlist_size),
         analysis::TextTable::num(p->mean_detectability_detectable()),
         analysis::TextTable::num(p->mean_detectability_per_po(), 5)});
  }

  bench::shape_check(c1355.num_gates() > c499.num_gates(),
                     "expansion adds circuitry");
  bench::shape_check(p1355.mean_detectability_detectable() <
                         p499.mean_detectability_detectable(),
                     "detectability decreases with the added circuitry");
  return 0;
}
