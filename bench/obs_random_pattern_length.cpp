// Application of the exact profiles: predicted random-pattern test length
// per circuit, cross-checked against actual random-pattern fault grading.
// The paper's introduction motivates exact detectability data with the
// PPM-level quality demands of deterministic testing; this bench shows the
// profiles predicting test length, and the falling detectabilities of
// figure 2 translating into super-linear pattern-count growth.
#include "common.hpp"
#include "analysis/random_pattern.hpp"
#include "sim/fault_sim.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("obs_random_pattern_length", argc, argv);
  bench::banner("Application -- random-pattern test length from exact "
                "profiles",
                "Expected coverage from exact detectabilities matches "
                "simulated random grading; larger circuits need more "
                "patterns per fault.");

  analysis::TextTable table({"circuit", "N for 95%", "N for 99%",
                             "predicted cov @256", "simulated cov @256"});
  std::cout << "csv:circuit,n95,n99,predicted256,simulated256\n";
  double worst_gap = 0.0;
  for (const char* name : {"c17", "c95", "alu181", "c432", "c499"}) {
    obs::ScopedTimer timer = session.phase(name);
    const analysis::CircuitProfile p =
        analysis::analyze_stuck_at(netlist::make_benchmark(name),
                                   session.options());
    session.record_profile(p);
    const netlist::Circuit c = netlist::make_benchmark(name);

    const std::size_t n95 = analysis::patterns_for_coverage(p, 0.95);
    const std::size_t n99 = analysis::patterns_for_coverage(p, 0.99);
    const double predicted = analysis::expected_random_coverage(p, 256);

    // Simulated: grade 256 random patterns over the same collapsed set,
    // averaged across seeds to damp sampling noise.
    sim::FaultSimulator fs(c);
    const auto faults = fault::collapse_checkpoint_faults(c);
    double simulated = 0.0;
    constexpr int kSeeds = 5;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto cov = fs.grade_random(faults, 256, 1000 + seed);
      simulated += cov.fraction();
    }
    simulated /= kSeeds;
    // Normalize the prediction to all faults (it covers detectable only).
    const double det_frac =
        static_cast<double>(p.detectable_count()) /
        static_cast<double>(p.faults.size());
    const double predicted_all = predicted * det_frac;

    table.add_row({name, std::to_string(n95), std::to_string(n99),
                   analysis::TextTable::num(predicted_all),
                   analysis::TextTable::num(simulated)});
    analysis::write_csv_row(std::cout,
                            {name, std::to_string(n95), std::to_string(n99),
                             analysis::TextTable::num(predicted_all),
                             analysis::TextTable::num(simulated)});
    worst_gap = std::max(worst_gap, std::abs(predicted_all - simulated));
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(worst_gap < 0.05,
                     "profile-based prediction within 5% of simulation "
                     "(worst gap " + analysis::TextTable::num(worst_gap, 4) +
                         ")");
  return 0;
}
