// Figure 4: stuck-at adherence histogram for the 74LS181 ALU.
// Adherence a_i = detectability / excitation upper bound. The paper found
// generally low adherence values with a sharp rise at exactly 1.0 (PO
// faults always adhere fully; an unexpectedly large share of others too).
#include <algorithm>

#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("fig4_sa_adherence", argc, argv);
  bench::banner("Figure 4 -- stuck-at adherence histogram (74LS181)",
                "Low adherence overall, sharp spike at adherence = 1; "
                "syndromes are loose upper bounds on detectability.");

  obs::ScopedTimer timer = session.phase("alu181");
  const analysis::CircuitProfile p = analysis::analyze_stuck_at(
      netlist::make_benchmark("alu181"), session.options());
  timer.stop();
  session.record_profile(p);
  const analysis::Histogram h = p.adherence_histogram(20);
  analysis::print_histogram(std::cout, h,
                            "Fault proportion vs adherence (alu181)",
                            "adherence");
  std::cout << "csv:bin_lo,bin_hi,proportion\n";
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    analysis::write_csv_row(std::cout,
                            {analysis::TextTable::num(h.bin_lo(b), 3),
                             analysis::TextTable::num(h.bin_hi(b), 3),
                             analysis::TextTable::num(h.proportion(b), 4)});
  }

  // Shape: the last bin (adherence ~ 1) rises sharply above the tail that
  // precedes it -- the paper's "sharp rises at the adherence value one".
  const double last = h.proportion(h.num_bins() - 1);
  double tail = 0;
  std::size_t tail_bins = 0;
  for (std::size_t b = h.num_bins() / 2; b + 1 < h.num_bins(); ++b) {
    tail += h.proportion(b);
    ++tail_bins;
  }
  const double tail_mean =
      tail_bins ? tail / static_cast<double>(tail_bins) : 0;
  double below_half = 0;
  for (std::size_t b = 0; b + 1 < h.num_bins(); ++b) {
    if (h.bin_center(b) < 0.5) below_half += h.proportion(b);
  }
  bench::shape_check(last > 2 * tail_mean,
                     "sharp rise at adherence = 1 (last bin " +
                         analysis::TextTable::num(last, 3) +
                         " vs preceding-tail mean " +
                         analysis::TextTable::num(tail_mean, 3) + ")");
  bench::shape_check(below_half > 0.2,
                     "substantial mass at low adherence values (" +
                         analysis::TextTable::num(below_half, 3) + ")");
  return 0;
}
