// Figure 2: trends of mean stuck-at detectability (solid) and
// PO-count-normalized detectability (dotted) versus netlist size.
// The normalized series must decrease with circuit size; C1355 must sit
// below C499 despite computing the same functions.
#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("fig2_sa_trends", argc, argv);
  bench::banner("Figure 2 -- mean stuck-at detectability vs netlist size",
                "Raw means show no true trend; PO-normalized means decrease "
                "with size (testability falls as circuits grow).");

  analysis::TextTable table({"circuit", "gates", "PIs", "POs", "faults",
                             "mean det (detectable)", "mean det / #POs"});
  std::vector<std::pair<std::string, std::pair<double, double>>> rows;
  double c499_norm = -1, c1355_norm = -1;

  const analysis::AnalysisOptions& opt = session.options();
  std::cout << "csv:circuit,gates,pos,mean_det,mean_det_per_po\n";
  for (const std::string& name : netlist::benchmark_names()) {
    obs::ScopedTimer timer = session.phase(name);
    const analysis::CircuitProfile p =
        analysis::analyze_stuck_at(netlist::make_benchmark(name), opt);
    timer.stop();
    session.record_profile(p);
    const double mean = p.mean_detectability_detectable();
    const double norm = p.mean_detectability_per_po();
    table.add_row({p.circuit, std::to_string(p.netlist_size),
                   std::to_string(p.num_inputs), std::to_string(p.num_outputs),
                   std::to_string(p.faults.size()),
                   analysis::TextTable::num(mean),
                   analysis::TextTable::num(norm, 5)});
    analysis::write_csv_row(
        std::cout,
        {p.circuit, std::to_string(p.netlist_size),
         std::to_string(p.num_outputs), analysis::TextTable::num(mean),
         analysis::TextTable::num(norm, 5)});
    rows.push_back({p.circuit, {static_cast<double>(p.netlist_size), norm}});
    if (name == "c499") c499_norm = norm;
    if (name == "c1355") c1355_norm = norm;
  }
  std::cout << "\n";
  table.print(std::cout);

  // Shape checks: monotone-ish decrease of the normalized series over the
  // size-ordered suite (allowing local noise: compare first vs last and
  // count inversions), plus the C499/C1355 pair.
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].second.second > rows[i - 1].second.second) ++inversions;
  }
  bench::shape_check(rows.front().second.second > rows.back().second.second,
                     "normalized detectability lower for the largest circuit "
                     "than the smallest");
  bench::shape_check(inversions <= rows.size() / 2,
                     "normalized series mostly decreasing (" +
                         std::to_string(inversions) + " inversions)");
  bench::shape_check(c1355_norm < c499_norm,
                     "C1355 below C499 despite identical functions "
                     "(minimal designs are more testable): " +
                         analysis::TextTable::num(c1355_norm, 5) + " < " +
                         analysis::TextTable::num(c499_norm, 5));
  return 0;
}
