// Ablation (paper §4.2): "For the circuits C499 and larger, functional
// decomposition was used to speed up Difference Propagation [21], so the
// fractions of NFBFs which are also double stuck-at faults for those
// circuits may not be completely accurate due to the decomposition masking
// some functional interactions."
//
// This bench quantifies that trade on the C499-class circuit: BDD nodes
// and wall time saved by cut-point decomposition, against the fraction of
// bridging-fault stuck-at classifications that change.
#include <chrono>

#include "common.hpp"
#include "dp/engine.hpp"
#include "fault/sampling.hpp"
#include "netlist/layout.hpp"
#include "netlist/structure.hpp"

using namespace dp;

namespace {

struct RunResult {
  std::vector<bool> stuck_at_like;
  std::size_t good_nodes = 0;
  std::size_t cuts = 0;
  long long millis = 0;
};

RunResult classify(const netlist::Circuit& c,
                   const std::vector<fault::BridgingFault>& faults,
                   std::size_t cut_threshold) {
  const auto t0 = std::chrono::steady_clock::now();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctionOptions opt;
  opt.cut_threshold = cut_threshold;
  core::GoodFunctions good(mgr, c, opt);
  core::DifferencePropagator dp(good, st);
  RunResult r;
  r.good_nodes = good.total_nodes();
  r.cuts = good.cut_nets().size();
  for (const auto& f : faults) {
    r.stuck_at_like.push_back(dp.analyze(f).bridge_stuck_at);
  }
  r.millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("abl_decomposition", argc, argv);
  bench::banner("Ablation -- cut-point functional decomposition (C499)",
                "Decomposition trades exactness for node count: cheaper "
                "analysis, but some BF stuck-at classifications change "
                "('masked functional interactions').");

  const netlist::Circuit c = netlist::make_benchmark("c499");
  netlist::Structure st(c);
  netlist::LayoutEstimate layout(c, st);
  fault::SamplingOptions sampling;
  sampling.target_count = 400;
  const auto faults = fault::nfbf_fault_set(c, st, layout,
                                            fault::BridgeType::And, sampling);

  obs::ScopedTimer exact_timer = session.phase("exact");
  const RunResult exact = classify(c, faults, 0);
  exact_timer.stop();
  session.metrics().counter("decomp.faults").add(faults.size());
  session.metrics().gauge("decomp.exact_nodes").set(
      static_cast<double>(exact.good_nodes));
  analysis::TextTable table({"cut threshold", "cut nets", "good-fn nodes",
                             "time (ms)", "stuck-at-like frac",
                             "classification changes"});
  auto frac = [&](const RunResult& r) {
    std::size_t n = 0;
    for (bool b : r.stuck_at_like) n += b;
    return static_cast<double>(n) / static_cast<double>(r.stuck_at_like.size());
  };
  table.add_row({"exact", "0", std::to_string(exact.good_nodes),
                 std::to_string(exact.millis),
                 analysis::TextTable::num(frac(exact)), "-"});

  std::cout << "csv:threshold,cuts,nodes,ms,changes\n";
  bool nodes_drop = false;
  std::size_t min_changes = faults.size();
  for (std::size_t threshold : {512u, 128u, 32u}) {
    obs::ScopedTimer timer = session.phase("cut" + std::to_string(threshold));
    const RunResult r = classify(c, faults, threshold);
    timer.stop();
    std::size_t changes = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      changes += (r.stuck_at_like[i] != exact.stuck_at_like[i]);
    }
    table.add_row({std::to_string(threshold), std::to_string(r.cuts),
                   std::to_string(r.good_nodes), std::to_string(r.millis),
                   analysis::TextTable::num(frac(r)),
                   std::to_string(changes)});
    analysis::write_csv_row(
        std::cout, {std::to_string(threshold), std::to_string(r.cuts),
                    std::to_string(r.good_nodes), std::to_string(r.millis),
                    std::to_string(changes)});
    nodes_drop = nodes_drop || r.good_nodes < exact.good_nodes;
    min_changes = std::min(min_changes, changes);
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(nodes_drop, "decomposition shrinks good-function BDDs");
  bench::shape_check(min_changes < faults.size() / 4,
                     "classifications mostly survive decomposition "
                     "(the paper's 'may not be completely accurate', not "
                     "'wrong')");
  return 0;
}
