// Ablation (paper §2.2 assumption): "This assumes that the PIs were stated
// in a meaningful order. Our work with variable ordering in OBDDs indicates
// that this assumption is probably valid."
//
// We quantify it: total good-function BDD nodes per circuit under the
// stated PI order, its reverse, the fanin-DFS heuristic, and a random
// shuffle. The stated order should be competitive with the heuristic and
// far better than random on the structured circuits.
#include "common.hpp"
#include "dp/good_functions.hpp"
#include "dp/ordering.hpp"

using namespace dp;

namespace {

std::size_t nodes_under(const netlist::Circuit& c, core::VarOrderKind kind) {
  core::GoodFunctionOptions opt;
  opt.variable_order = core::compute_variable_order(c, kind);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c, opt);
  return good.total_nodes();
}

/// Live nodes shared across all good functions before and after sifting
/// away from the stated PI order.
std::pair<std::size_t, std::size_t> sift_gain(const netlist::Circuit& c) {
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  mgr.gc();
  const std::size_t before = mgr.count_live_from_roots();
  const std::size_t after = mgr.sift_reorder();
  return {before, after};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("abl_variable_order", argc, argv);
  bench::banner("Ablation -- OBDD variable order vs stated PI order",
                "The benchmark's stated PI order is 'meaningful': it should "
                "rival the fanin-DFS heuristic and beat a random order.");

  analysis::TextTable table({"circuit", "PI order", "fanin DFS", "reverse",
                             "random", "PI/random", "live sifted"});
  std::cout << "csv:circuit,pi_order,fanin_dfs,reverse,random,live_before_sift,live_after_sift\n";
  std::size_t pi_beats_random = 0, total = 0;
  bool sift_never_worse = true;
  for (const std::string& name : netlist::benchmark_names()) {
    obs::ScopedTimer timer = session.phase(name);
    const netlist::Circuit c = netlist::make_benchmark(name);
    const std::size_t pi = nodes_under(c, core::VarOrderKind::PiOrder);
    const std::size_t dfs = nodes_under(c, core::VarOrderKind::FaninDfs);
    const std::size_t rev = nodes_under(c, core::VarOrderKind::Reverse);
    const std::size_t rnd = nodes_under(c, core::VarOrderKind::Random);
    const auto [live_pi, live_sift] = sift_gain(c);
    table.add_row({name, std::to_string(pi), std::to_string(dfs),
                   std::to_string(rev), std::to_string(rnd),
                   analysis::TextTable::num(
                       static_cast<double>(pi) / static_cast<double>(rnd), 3),
                   std::to_string(live_sift) + "/" + std::to_string(live_pi)});
    analysis::write_csv_row(
        std::cout, {name, std::to_string(pi), std::to_string(dfs),
                    std::to_string(rev), std::to_string(rnd),
                    std::to_string(live_pi), std::to_string(live_sift)});
    timer.stop();
    session.metrics().gauge("order.pi_nodes." + name).set(
        static_cast<double>(pi));
    session.metrics().gauge("order.random_nodes." + name).set(
        static_cast<double>(rnd));
    ++total;
    if (pi <= rnd) ++pi_beats_random;
    if (live_sift > live_pi) sift_never_worse = false;
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(pi_beats_random * 4 >= total * 3,
                     "stated PI order no worse than random on most circuits "
                     "(" + std::to_string(pi_beats_random) + "/" +
                         std::to_string(total) + ")");
  bench::shape_check(sift_never_worse,
                     "sifting never increases the shared live node count");
  return 0;
}
