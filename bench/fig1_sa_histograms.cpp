// Figure 1: stuck-at fault detection probability histograms for C95 and
// the 74LS181 ALU. Fault counts are normalized to the fault-set size.
#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("fig1_sa_histograms", argc, argv);
  bench::banner("Figure 1 -- stuck-at detection probability histograms",
                "Profiles of exact detectabilities for C95 and the 74LS181; "
                "mass concentrates at low detectabilities.");

  const analysis::AnalysisOptions& opt = session.options();
  for (const char* name : {"c95", "alu181"}) {
    obs::ScopedTimer timer = session.phase(name);
    const analysis::CircuitProfile p =
        analysis::analyze_stuck_at(netlist::make_benchmark(name), opt);
    timer.stop();
    session.record_profile(p);
    std::cout << "\nCircuit " << p.circuit << ": " << p.faults.size()
              << " collapsed checkpoint faults, " << p.detectable_count()
              << " detectable\n";
    const analysis::Histogram h = p.detectability_histogram(20);
    analysis::print_histogram(std::cout, h,
                              "Fault proportion vs detection probability (" +
                                  p.circuit + ")",
                              "detection probability");

    std::cout << "csv:circuit,bin_lo,bin_hi,proportion\n";
    for (std::size_t b = 0; b < h.num_bins(); ++b) {
      analysis::write_csv_row(
          std::cout, {p.circuit, analysis::TextTable::num(h.bin_lo(b), 3),
                      analysis::TextTable::num(h.bin_hi(b), 3),
                      analysis::TextTable::num(h.proportion(b), 4)});
    }

    // Paper shape: most faults sit in the low-detectability bins; the
    // distribution tail above 0.5 is thin.
    double low = 0, high = 0;
    for (std::size_t b = 0; b < h.num_bins(); ++b) {
      (h.bin_center(b) < 0.5 ? low : high) += h.proportion(b);
    }
    bench::shape_check(low > high,
                       p.circuit + ": mass concentrated below 0.5 (" +
                           analysis::TextTable::num(low, 3) + " vs " +
                           analysis::TextTable::num(high, 3) + ")");
  }
  return 0;
}
