// Figure 3: mean stuck-at detectability versus maximum distance (in
// levels) to a PO for the C1355-class circuit -- the "bathtub" curve.
// Also prints the PI-distance counterpart, which the paper found "much
// more random", supporting observability-driven DFT.
#include <algorithm>

#include "common.hpp"

using namespace dp;

namespace {

/// Pearson correlation of a series' key order vs its values -- a cheap
/// monotonicity/structure summary used by the shape checks.
double spread(const std::map<int, double>& series) {
  double lo = 1e9, hi = -1e9;
  for (const auto& [k, v] : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}

double ends_minus_middle(const std::map<int, double>& series) {
  if (series.size() < 3) return 0.0;
  std::vector<double> vals;
  for (const auto& [k, v] : series) vals.push_back(v);
  const double first = vals.front(), last = vals.back();
  double mid = 0;
  std::size_t n = 0;
  for (std::size_t i = vals.size() / 4; i < (3 * vals.size()) / 4; ++i) {
    mid += vals[i];
    ++n;
  }
  if (n == 0) return 0.0;
  mid /= static_cast<double>(n);
  return std::min(first, last) - mid;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("fig3_sa_po_distance", argc, argv);
  bench::banner(
      "Figure 3 -- mean stuck-at detectability vs max levels to PO (C1355)",
      "Bathtub curve: faults near PIs and near POs are easier to detect "
      "than faults in the circuit center; PO proximity correlates best.");

  obs::ScopedTimer timer = session.phase("c1355");
  const analysis::CircuitProfile p = analysis::analyze_stuck_at(
      netlist::make_benchmark("c1355"), session.options());
  timer.stop();
  session.record_profile(p);
  const auto po_series = p.detectability_by_po_distance();
  const auto pi_series = p.detectability_by_pi_distance();

  analysis::print_series(std::cout, po_series,
                         "Mean detectability vs maximum levels to PO",
                         "max levels to PO", "mean detectability");
  std::cout << "csv:max_levels_to_po,mean_detectability\n";
  for (const auto& [k, v] : po_series) {
    analysis::write_csv_row(std::cout, {std::to_string(k),
                                        analysis::TextTable::num(v, 5)});
  }

  std::cout << "\n";
  analysis::print_series(std::cout, pi_series,
                         "Control side: mean detectability vs levels from PI",
                         "levels from PI", "mean detectability");

  // Shape: the PO curve has bathtub character (ends above the middle).
  bench::shape_check(ends_minus_middle(po_series) > 0,
                     "PO-distance curve ends exceed its middle (bathtub)");
  bench::shape_check(spread(po_series) > 0.0,
                     "PO-distance curve is non-degenerate (spread = " +
                         analysis::TextTable::num(spread(po_series), 4) + ")");
  // Faults closest to the POs are better detected than the curve average.
  const double at_po = po_series.empty() ? 0.0 : po_series.begin()->second;
  double mean_all = 0;
  for (const auto& [k, v] : po_series) mean_all += v;
  mean_all /= static_cast<double>(po_series.size());
  bench::shape_check(at_po > mean_all,
                     "faults nearest the POs beat the curve average");
  return 0;
}
