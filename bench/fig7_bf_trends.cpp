// Figure 7: trends of mean bridging-fault detectability and
// PO-normalized detectability versus netlist size, both dominance types.
// BF means sit slightly above the stuck-at means and the normalized trend
// still decreases with circuit size.
#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("fig7_bf_trends", argc, argv);
  bench::banner("Figure 7 -- mean bridging-fault detectability vs size",
                "Bridging means slightly above stuck-at means; normalized "
                "detectability still decreasing with netlist size.");

  const analysis::AnalysisOptions& opt = session.options();
  analysis::TextTable table({"circuit", "gates", "AND mean", "OR mean",
                             "AND mean/#POs", "OR mean/#POs", "SA mean"});
  std::cout << "csv:circuit,gates,and_mean,or_mean,and_norm,or_norm,sa_mean\n";

  double first_norm = -1, last_norm = -1;
  std::size_t bf_above_sa = 0, circuits = 0;
  for (const std::string& name : netlist::benchmark_names()) {
    obs::ScopedTimer timer = session.phase(name);
    const netlist::Circuit c = netlist::make_benchmark(name);
    const analysis::CircuitProfile pa =
        analysis::analyze_bridging(c, fault::BridgeType::And, opt);
    const analysis::CircuitProfile po =
        analysis::analyze_bridging(c, fault::BridgeType::Or, opt);
    const analysis::CircuitProfile ps = analysis::analyze_stuck_at(c, opt);
    timer.stop();
    session.record_profile(pa);
    session.record_profile(po);
    session.record_profile(ps);
    const double am = pa.mean_detectability_detectable();
    const double om = po.mean_detectability_detectable();
    const double an = pa.mean_detectability_per_po();
    const double on = po.mean_detectability_per_po();
    const double sm = ps.mean_detectability_detectable();
    table.add_row({name, std::to_string(pa.netlist_size),
                   analysis::TextTable::num(am), analysis::TextTable::num(om),
                   analysis::TextTable::num(an, 5),
                   analysis::TextTable::num(on, 5),
                   analysis::TextTable::num(sm)});
    analysis::write_csv_row(
        std::cout,
        {name, std::to_string(pa.netlist_size), analysis::TextTable::num(am),
         analysis::TextTable::num(om), analysis::TextTable::num(an, 5),
         analysis::TextTable::num(on, 5), analysis::TextTable::num(sm)});
    const double norm = (an + on) / 2;
    if (first_norm < 0) first_norm = norm;
    last_norm = norm;
    ++circuits;
    if ((am + om) / 2 >= sm) ++bf_above_sa;
  }
  std::cout << "\n";
  table.print(std::cout);

  bench::shape_check(last_norm < first_norm,
                     "PO-normalized BF detectability decreases with size");
  bench::shape_check(bf_above_sa * 2 >= circuits,
                     "mean BF detectability >= stuck-at mean on most "
                     "circuits (" +
                         std::to_string(bf_above_sa) + "/" +
                         std::to_string(circuits) + ")");
  return 0;
}
