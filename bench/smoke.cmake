# Runs every bench executable on a reduced workload with --metrics-json,
# then validates the emitted dp.metrics.v1 documents and aggregates them
# into BENCH_summary.json. Driven by the `bench_smoke` custom target:
#
#   cmake -DBENCH_DIR=<bindir>/bench -DOUT_DIR=<bindir>/bench_smoke \
#         -DVALIDATOR=<bindir>/bench/validate_metrics \
#         -DBENCHES="fig1_sa_histograms;..." -P smoke.cmake
#
# DP_BENCH_BF_COUNT=50 keeps the bridging-fault samples small; the
# google-benchmark benches are filtered to one cheap case each so the
# smoke pass checks the telemetry plumbing, not steady-state performance.
if(NOT BENCH_DIR OR NOT OUT_DIR OR NOT VALIDATOR OR NOT BENCHES)
  message(FATAL_ERROR "smoke.cmake needs BENCH_DIR, OUT_DIR, VALIDATOR, BENCHES")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(json_files "")
foreach(bench IN LISTS BENCHES)
  set(extra "")
  if(bench STREQUAL "perf_bdd_ops")
    set(extra "--benchmark_filter=BM_Negate/16$")
  elseif(bench STREQUAL "perf_dp_vs_exhaustive")
    set(extra "--benchmark_filter=BM_DifferencePropagation/1$")
  endif()
  set(json "${OUT_DIR}/BENCH_${bench}.json")
  message(STATUS "bench_smoke: ${bench}")
  execute_process(
      COMMAND "${CMAKE_COMMAND}" -E env DP_BENCH_BF_COUNT=50
              "${BENCH_DIR}/${bench}" --metrics-json "${json}" ${extra}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: ${bench} exited ${rc}:\n${out}")
  endif()
  list(APPEND json_files "${json}")
endforeach()

execute_process(
    COMMAND "${VALIDATOR}" --summary "${OUT_DIR}/BENCH_summary.json"
            ${json_files}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: metrics validation failed (${rc})")
endif()
message(STATUS "bench_smoke: all documents valid; summary at "
               "${OUT_DIR}/BENCH_summary.json")
