# Runs every bench executable on a reduced workload with
# DP_BENCH_METRICS_DIR pointed at OUT_DIR (each bench names its own
# BENCH_<id>.json), validates the emitted dp.metrics.v1 documents,
# aggregates them into BENCH_summary.json, diffs BENCH_bdd_ops.json
# against the checked-in perf baseline, and finally runs the bdd/store
# test binaries under the `asan` preset. Driven by the `bench_smoke`
# custom target:
#
#   cmake -DBENCH_DIR=<bindir>/bench -DOUT_DIR=<bindir>/bench_smoke \
#         -DVALIDATOR=<bindir>/bench/validate_metrics \
#         -DBENCHES="fig1_sa_histograms;..." \
#         [-DBASELINE=<srcdir>/bench/baselines/BENCH_bdd_ops.json] \
#         [-DTOLERANCE=3.0] [-DSTRICT=ON] [-DSOURCE_DIR=<srcdir>] \
#         -P smoke.cmake
#
# DP_BENCH_BF_COUNT=50 keeps the bridging-fault samples small; the
# google-benchmark benches are filtered to one cheap case each so the
# smoke pass checks the telemetry plumbing, not steady-state performance.
# The perf-regression guard warns by default (smoke runs share the
# machine with the build); configure with -DDP_BENCH_STRICT=ON -- or set
# the DP_BENCH_STRICT=ON environment variable -- to make guard
# violations fail the target.
if(NOT BENCH_DIR OR NOT OUT_DIR OR NOT VALIDATOR OR NOT BENCHES)
  message(FATAL_ERROR "smoke.cmake needs BENCH_DIR, OUT_DIR, VALIDATOR, BENCHES")
endif()
# BENCHES arrives comma-separated (see bench/CMakeLists.txt).
string(REPLACE "," ";" BENCHES "${BENCHES}")
if(DEFINED ENV{DP_BENCH_STRICT} AND "$ENV{DP_BENCH_STRICT}" STREQUAL "ON")
  set(STRICT ON)
endif()
if(NOT TOLERANCE)
  set(TOLERANCE 3.0)
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
# Stale documents from an earlier pass would otherwise survive into the
# glob below and be re-validated as if fresh.
file(GLOB _stale "${OUT_DIR}/BENCH_*.json")
if(_stale)
  file(REMOVE ${_stale})
endif()

foreach(bench IN LISTS BENCHES)
  set(extra "")
  if(bench STREQUAL "perf_bdd_ops")
    set(extra "--benchmark_filter=BM_Negate/16$")
  elseif(bench STREQUAL "perf_dp_vs_exhaustive")
    set(extra "--benchmark_filter=BM_DifferencePropagation/1$")
  endif()
  message(STATUS "bench_smoke: ${bench}")
  execute_process(
      COMMAND "${CMAKE_COMMAND}" -E env DP_BENCH_BF_COUNT=50
              "DP_BENCH_METRICS_DIR=${OUT_DIR}"
              "${BENCH_DIR}/${bench}" ${extra}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: ${bench} exited ${rc}:\n${out}")
  endif()
endforeach()

file(GLOB json_files "${OUT_DIR}/BENCH_*.json")
list(REMOVE_ITEM json_files "${OUT_DIR}/BENCH_summary.json")
if(NOT json_files)
  message(FATAL_ERROR "bench_smoke: no BENCH_*.json documents were emitted")
endif()

set(guard_args "")
if(BASELINE)
  if(NOT EXISTS "${BASELINE}")
    message(FATAL_ERROR "bench_smoke: baseline ${BASELINE} does not exist")
  endif()
  set(guard_args --baseline "${BASELINE}" --tolerance "${TOLERANCE}")
  if(STRICT)
    list(APPEND guard_args --strict)
  endif()
endif()

execute_process(
    COMMAND "${VALIDATOR}" --summary "${OUT_DIR}/BENCH_summary.json"
            ${guard_args} ${json_files}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: metrics validation failed (${rc})")
endif()
message(STATUS "bench_smoke: all documents valid; summary at "
               "${OUT_DIR}/BENCH_summary.json")

# ---- ASan pass over the kernel/store test binaries ----------------------
# The complement-edge kernel and the v2 forest loader are the two places
# where an off-by-one on the complement bit corrupts memory instead of
# failing a test, so the smoke target reruns their suites under the
# `asan` preset (ASan+UBSan, build-asan/).
if(SOURCE_DIR)
  set(asan_tests bdd_test bdd_reorder_test gc_stress_test store_test)
  message(STATUS "bench_smoke: configuring asan preset")
  execute_process(
      COMMAND "${CMAKE_COMMAND}" --preset asan
      WORKING_DIRECTORY "${SOURCE_DIR}"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: asan configure failed (${rc}):\n${out}")
  endif()
  execute_process(
      COMMAND "${CMAKE_COMMAND}" --build "${SOURCE_DIR}/build-asan"
              --parallel --target ${asan_tests}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: asan build failed (${rc}):\n${out}")
  endif()
  foreach(test IN LISTS asan_tests)
    message(STATUS "bench_smoke: asan ${test}")
    execute_process(
        COMMAND "${SOURCE_DIR}/build-asan/tests/${test}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE out)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "bench_smoke: asan ${test} failed (${rc}):\n${out}")
    endif()
  endforeach()
  message(STATUS "bench_smoke: asan pass clean (${asan_tests})")
endif()
