# Runs every bench executable on a reduced workload with
# DP_BENCH_METRICS_DIR pointed at OUT_DIR (each bench names its own
# BENCH_<id>.json), validates the emitted dp.metrics.v1 documents,
# aggregates them into BENCH_summary.json, diffs BENCH_bdd_ops.json
# against the checked-in perf baseline, checks the span/profiler trace
# perf_hybrid emits (validate_metrics + dptrace coverage assertion),
# runs the dpfuzz differential fuzz corpus (DP_FUZZ_BUDGET env var
# scales the case count), runs the bdd/store/verify test binaries plus a
# reduced fuzz corpus under the `asan` preset, and finally reruns the
# concurrent surfaces (serving layer, parallel engine, artifact store)
# under the `tsan` preset. Driven by the `bench_smoke` custom target:
#
#   cmake -DBENCH_DIR=<bindir>/bench -DOUT_DIR=<bindir>/bench_smoke \
#         -DVALIDATOR=<bindir>/bench/validate_metrics \
#         -DBENCHES="fig1_sa_histograms;..." \
#         [-DBASELINE=<srcdir>/bench/baselines/BENCH_bdd_ops.json] \
#         [-DTOLERANCE=3.0] [-DSTRICT=ON] [-DSOURCE_DIR=<srcdir>] \
#         -P smoke.cmake
#
# DP_BENCH_BF_COUNT=50 keeps the bridging-fault samples small; the
# google-benchmark benches are filtered to one cheap case each so the
# smoke pass checks the telemetry plumbing, not steady-state performance.
# The perf-regression guard warns by default (smoke runs share the
# machine with the build); configure with -DDP_BENCH_STRICT=ON -- or set
# the DP_BENCH_STRICT=ON environment variable -- to make guard
# violations fail the target.
if(NOT BENCH_DIR OR NOT OUT_DIR OR NOT VALIDATOR OR NOT BENCHES)
  message(FATAL_ERROR "smoke.cmake needs BENCH_DIR, OUT_DIR, VALIDATOR, BENCHES")
endif()
# BENCHES arrives comma-separated (see bench/CMakeLists.txt).
string(REPLACE "," ";" BENCHES "${BENCHES}")
if(DEFINED ENV{DP_BENCH_STRICT} AND "$ENV{DP_BENCH_STRICT}" STREQUAL "ON")
  set(STRICT ON)
endif()
if(NOT TOLERANCE)
  set(TOLERANCE 3.0)
endif()
# Node-count gauges (peak_live_nodes and friends) are load-independent,
# so they get a tighter band than throughput numbers.
if(NOT NODE_TOLERANCE)
  set(NODE_TOLERANCE 1.5)
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
# Stale documents from an earlier pass would otherwise survive into the
# glob below and be re-validated as if fresh.
file(GLOB _stale "${OUT_DIR}/BENCH_*.json")
if(_stale)
  file(REMOVE ${_stale})
endif()

foreach(bench IN LISTS BENCHES)
  set(extra "")
  if(bench STREQUAL "perf_bdd_ops")
    set(extra "--benchmark_filter=BM_Negate/16$")
  elseif(bench STREQUAL "perf_dp_vs_exhaustive")
    set(extra "--benchmark_filter=BM_DifferencePropagation/1$")
  elseif(bench STREQUAL "perf_hybrid")
    # Reduced workload: the headline resolution/speedup shape checks are
    # self-skipped off the default c1908/4096 configuration. This bench
    # also exercises the span/profiler pipeline end to end: the trace it
    # writes is validated and analyzed below.
    set(extra --circuit c432 --patterns 512
        --trace-out "${OUT_DIR}/TRACE_hybrid.json")
  elseif(bench STREQUAL "fig_ndetect")
    # Reduced workload: one mid-size circuit to a low n -- the exact
    # recount cross-check and the dp.metrics.v1 document shape are what
    # the smoke pass gates, not the full four-circuit curve.
    set(extra --circuits c432 --max-n 2)
  endif()
  message(STATUS "bench_smoke: ${bench}")
  execute_process(
      COMMAND "${CMAKE_COMMAND}" -E env DP_BENCH_BF_COUNT=50
              "DP_BENCH_METRICS_DIR=${OUT_DIR}"
              "${BENCH_DIR}/${bench}" ${extra}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: ${bench} exited ${rc}:\n${out}")
  endif()
endforeach()

file(GLOB json_files "${OUT_DIR}/BENCH_*.json")
list(REMOVE_ITEM json_files "${OUT_DIR}/BENCH_summary.json")
if(NOT json_files)
  message(FATAL_ERROR "bench_smoke: no BENCH_*.json documents were emitted")
endif()

# --strict is independent of the baseline guard: it also hard-fails the
# run on dropped trace events/spans (ring wrap = partial attribution).
set(guard_args "")
if(BASELINE)
  if(NOT EXISTS "${BASELINE}")
    message(FATAL_ERROR "bench_smoke: baseline ${BASELINE} does not exist")
  endif()
  set(guard_args --baseline "${BASELINE}" --tolerance "${TOLERANCE}")
endif()
if(STRICT)
  list(APPEND guard_args --strict)
endif()

execute_process(
    COMMAND "${VALIDATOR}" --summary "${OUT_DIR}/BENCH_summary.json"
            ${guard_args} ${json_files}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: metrics validation failed (${rc})")
endif()
message(STATUS "bench_smoke: all documents valid; summary at "
               "${OUT_DIR}/BENCH_summary.json")

# Second guard pass: the parallel-sweep baseline carries the shared-forest
# node-footprint gauges (dp.peak_live_nodes, dp.frozen_nodes, ...), which
# are deterministic for a fixed workload -- the tighter NODE_TOLERANCE
# band applies to those keys, TOLERANCE to the rest.
if(BASELINE_PARALLEL)
  if(NOT EXISTS "${BASELINE_PARALLEL}")
    message(FATAL_ERROR
            "bench_smoke: baseline ${BASELINE_PARALLEL} does not exist")
  endif()
  set(par_guard --baseline "${BASELINE_PARALLEL}" --tolerance "${TOLERANCE}"
      --node-tolerance "${NODE_TOLERANCE}")
  if(STRICT)
    list(APPEND par_guard --strict)
  endif()
  execute_process(
      COMMAND "${VALIDATOR}" ${par_guard} ${json_files}
      RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "bench_smoke: parallel-sweep node guard failed (${rc})")
  endif()
  message(STATUS "bench_smoke: shared-forest node guard clean "
                 "(node tolerance ${NODE_TOLERANCE}x)")
endif()

# ---- Trace pipeline ------------------------------------------------------
# perf_hybrid wrote a dp.trace.v1 span/profile document above; it must
# validate (dropped spans fail under STRICT) and dptrace's root-span
# attribution must cover at least half the run's wall clock.
if(NOT EXISTS "${OUT_DIR}/TRACE_hybrid.json")
  message(FATAL_ERROR "bench_smoke: perf_hybrid emitted no trace document")
endif()
set(trace_strict "")
if(STRICT)
  set(trace_strict --strict)
endif()
execute_process(
    COMMAND "${VALIDATOR}" ${trace_strict} "${OUT_DIR}/TRACE_hybrid.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke: trace validation failed (${rc})")
endif()
if(DPTRACE)
  execute_process(
      COMMAND "${DPTRACE}" "${OUT_DIR}/TRACE_hybrid.json"
              --assert-coverage 0.5
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: dptrace analysis failed (${rc}):\n${out}")
  endif()
  message(STATUS "bench_smoke: trace pipeline clean (TRACE_hybrid.json)")
endif()

# ---- Differential fuzz corpus -------------------------------------------
# The dpfuzz oracle matrix over a fixed-seed corpus, at --jobs 1 and
# --jobs 4, plus the mutation self-test. Set the DP_FUZZ_BUDGET
# environment variable to a case count to turn the default 50-case smoke
# corpus into a long campaign (e.g. DP_FUZZ_BUDGET=10000).
if(DPFUZZ)
  set(fuzz_cases 50)
  if(DEFINED ENV{DP_FUZZ_BUDGET} AND NOT "$ENV{DP_FUZZ_BUDGET}" STREQUAL "")
    set(fuzz_cases "$ENV{DP_FUZZ_BUDGET}")
  endif()
  message(STATUS "bench_smoke: dpfuzz mutation self-test")
  execute_process(
      COMMAND "${DPFUZZ}" --seed 1 --cases 2 --max-inputs 6 --max-gates 20
              --jobs 2 --no-store --self-test --quiet
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: dpfuzz self-test failed (${rc}):\n${out}")
  endif()
  foreach(jobs IN ITEMS 1 4)
    message(STATUS
            "bench_smoke: dpfuzz corpus (${fuzz_cases} cases, jobs ${jobs})")
    execute_process(
        COMMAND "${DPFUZZ}" --seed 42 --cases ${fuzz_cases} --jobs ${jobs}
                --quiet --scratch-dir "${OUT_DIR}/fuzz_scratch_j${jobs}"
                --repro-dir "${OUT_DIR}/fuzz_repro_j${jobs}"
                --metrics-json "${OUT_DIR}/FUZZ_jobs${jobs}.json"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE out)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "bench_smoke: dpfuzz --jobs ${jobs} failed (${rc}):\n${out}")
    endif()
    execute_process(
        COMMAND "${VALIDATOR}" "${OUT_DIR}/FUZZ_jobs${jobs}.json"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "bench_smoke: fuzz report validation failed (${rc})")
    endif()
  endforeach()
  message(STATUS "bench_smoke: fuzz corpus clean (${fuzz_cases} cases)")
endif()

# ---- ASan pass over the kernel/store test binaries ----------------------
# The complement-edge kernel and the v2 forest loader are the two places
# where an off-by-one on the complement bit corrupts memory instead of
# failing a test, so the smoke target reruns their suites under the
# `asan` preset (ASan+UBSan, build-asan/).
if(SOURCE_DIR)
  set(asan_tests bdd_test bdd_reorder_test gc_stress_test frozen_forest_test
      store_test verify_test sim_test hybrid_test ndetect_test)
  message(STATUS "bench_smoke: configuring asan preset")
  execute_process(
      COMMAND "${CMAKE_COMMAND}" --preset asan
      WORKING_DIRECTORY "${SOURCE_DIR}"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: asan configure failed (${rc}):\n${out}")
  endif()
  execute_process(
      COMMAND "${CMAKE_COMMAND}" --build "${SOURCE_DIR}/build-asan"
              --parallel --target ${asan_tests} dpfuzz
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: asan build failed (${rc}):\n${out}")
  endif()
  foreach(test IN LISTS asan_tests)
    message(STATUS "bench_smoke: asan ${test}")
    execute_process(
        COMMAND "${SOURCE_DIR}/build-asan/tests/${test}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE out)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "bench_smoke: asan ${test} failed (${rc}):\n${out}")
    endif()
  endforeach()
  # The fixed-seed fuzz corpus again, instrumented: the oracle matrix
  # stresses the engines with adversarial shapes, so a clean functional
  # pass can still hide latent memory errors ASan would catch. A reduced
  # case count keeps the (roughly 10x slower) instrumented run bounded.
  message(STATUS "bench_smoke: asan dpfuzz corpus")
  execute_process(
      COMMAND "${SOURCE_DIR}/build-asan/examples/dpfuzz"
              --seed 42 --cases 25 --jobs 2 --quiet
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: asan dpfuzz failed (${rc}):\n${out}")
  endif()
  message(STATUS "bench_smoke: asan pass clean (${asan_tests} dpfuzz)")

  # ---- TSan pass over the concurrent surfaces ---------------------------
  # The serving layer (worker pool, bounded admission queue, reader
  # threads, drain) and the parallel sweep engine are the two places a
  # data race survives functional testing; rerun their suites under the
  # `tsan` preset (build-tsan/). The c432 identity case is excluded: it
  # is a single-threaded determinism check and dominates instrumented
  # runtime without adding thread coverage.
  set(tsan_tests serve_test parallel_engine_test frozen_forest_test
      store_test ndetect_test)
  message(STATUS "bench_smoke: configuring tsan preset")
  execute_process(
      COMMAND "${CMAKE_COMMAND}" --preset tsan
      WORKING_DIRECTORY "${SOURCE_DIR}"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: tsan configure failed (${rc}):\n${out}")
  endif()
  execute_process(
      COMMAND "${CMAKE_COMMAND}" --build "${SOURCE_DIR}/build-tsan"
              --parallel --target ${tsan_tests}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_smoke: tsan build failed (${rc}):\n${out}")
  endif()
  foreach(test IN LISTS tsan_tests)
    set(tsan_filter "")
    if(test STREQUAL "serve_test")
      set(tsan_filter
          "--gtest_filter=-Suite/FieldIdentityTest.ServedEqualsInProcessAtWorkers1And4/2")
    endif()
    message(STATUS "bench_smoke: tsan ${test}")
    execute_process(
        COMMAND "${SOURCE_DIR}/build-tsan/tests/${test}" ${tsan_filter}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE out)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "bench_smoke: tsan ${test} failed (${rc}):\n${out}")
    endif()
  endforeach()
  message(STATUS "bench_smoke: tsan pass clean (${tsan_tests})")
endif()
