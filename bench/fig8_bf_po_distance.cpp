// Figure 8: mean bridging-fault detectability versus maximum distance to
// a PO for the C1355-class circuit -- the BF counterpart of figure 3.
#include <algorithm>
#include <cmath>

#include "common.hpp"

using namespace dp;

int main(int argc, char** argv) {
  bench::Session session("fig8_bf_po_distance", argc, argv);
  bench::banner(
      "Figure 8 -- mean bridging detectability vs max levels to PO (C1355)",
      "Same observability story as stuck-at faults: bridges near POs are "
      "easier; behavior of AND and OR bridges nearly identical.");

  const analysis::AnalysisOptions& opt = session.options();
  const netlist::Circuit c = netlist::make_benchmark("c1355");

  std::map<int, double> curves[2];
  int idx = 0;
  for (fault::BridgeType type :
       {fault::BridgeType::And, fault::BridgeType::Or}) {
    obs::ScopedTimer timer = session.phase(fault::to_string(type));
    const analysis::CircuitProfile p = analysis::analyze_bridging(c, type, opt);
    timer.stop();
    session.record_profile(p);
    curves[idx] = p.detectability_by_po_distance();
    analysis::print_series(
        std::cout, curves[idx],
        std::string("Mean detectability vs max levels to PO (") +
            fault::to_string(type) + " NFBFs)",
        "max levels to PO", "mean detectability");
    std::cout << "csv:type,max_levels_to_po,mean_detectability\n";
    for (const auto& [k, v] : curves[idx]) {
      analysis::write_csv_row(std::cout,
                              {fault::to_string(type), std::to_string(k),
                               analysis::TextTable::num(v, 5)});
    }
    std::cout << "\n";
    ++idx;
  }

  // Shape: near-PO bridges beat the deep-circuit average for both types.
  for (int i = 0; i < 2; ++i) {
    const auto& s = curves[i];
    if (s.empty()) continue;
    double near = s.begin()->second;
    double mean = 0;
    for (const auto& [k, v] : s) mean += v;
    mean /= static_cast<double>(s.size());
    bench::shape_check(near >= mean * 0.8,
                       std::string(i == 0 ? "AND" : "OR") +
                           ": near-PO bridges at or above the curve average");
  }
  // AND vs OR curves close on shared distances.
  double diff = 0;
  std::size_t n = 0;
  for (const auto& [k, v] : curves[0]) {
    auto it = curves[1].find(k);
    if (it != curves[1].end()) {
      diff += std::abs(v - it->second);
      ++n;
    }
  }
  if (n) diff /= static_cast<double>(n);
  bench::shape_check(n > 0 && diff < 0.15,
                     "AND and OR curves nearly coincide (mean |delta| = " +
                         analysis::TextTable::num(diff, 4) + ")");
  return 0;
}
