// n-detect cost curve: how many vectors does an exact n-detect test set
// need as n grows? For each circuit the 1-detect compact set is built
// first (greedy over the complete test sets), then topped up cumulatively
// to n = 2, 3, ... --max-n by minting witnesses from each fault's
// residual CTS BDD. Every per-fault count is re-derived by the wide
// fault simulator and compared with exact == before the curve is
// reported. Usage: fig_ndetect [--circuits a,b,c] [--max-n N] [--jobs N]
// (defaults c432,c499,c1355,c1908 / 5 / 4; DP_BENCH_JOBS env honored).
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/ndetect.hpp"
#include "common.hpp"
#include "fault/stuck_at.hpp"
#include "sim/wide_sim.hpp"

using namespace dp;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Document id "ndetect" -> BENCH_ndetect.json under
  // DP_BENCH_METRICS_DIR. Passthrough mode for the bench-specific
  // --circuits/--max-n flags.
  bench::Session session("ndetect", argc, argv, /*passthrough_unknown=*/true);
  bench::banner("n-detect cost curve -- vectors needed for n detections",
                "Exact n-detect test sets from complete test sets: the "
                "vector count grows sublinearly in n because minted "
                "witnesses are shared across faults.");

  std::vector<std::string> circuits = {"c432", "c499", "c1355", "c1908"};
  std::size_t max_n = 5;
  const auto& extra = session.passthrough_argv();
  for (std::size_t i = 0; i < extra.size(); ++i) {
    const std::string a = extra[i];
    auto value_of = [&]() -> const char* {
      if (i + 1 >= extra.size()) {
        std::cerr << "error: " << a << " requires a value\n";
        std::exit(2);
      }
      return extra[++i];
    };
    if (a == "--circuits") {
      circuits = split_commas(value_of());
    } else if (a == "--max-n") {
      max_n = static_cast<std::size_t>(std::atoll(value_of()));
    } else {
      std::cerr << "error: unknown option '" << a << "'\n";
      return 2;
    }
  }
  if (max_n == 0) max_n = 1;
  std::size_t jobs = session.jobs_explicit() ? session.options().jobs : 4;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  session.options().jobs = jobs;

  std::cout << "\ncsv:circuit,n,vectors,minted,cumulative_seconds\n";
  bool all_complete = true;
  bool all_exact = true;
  for (const std::string& name : circuits) {
    const netlist::Circuit circuit = netlist::make_benchmark(name);
    const auto faults = fault::collapse_checkpoint_faults(circuit);

    obs::ScopedTimer sweep_timer = session.phase("sweep." + name);
    const auto sweep_start = Clock::now();
    analysis::NDetectOptions nopt;
    nopt.jobs = jobs;
    analysis::NDetectAnalyzer analyzer(circuit, faults, nopt);
    sweep_timer.stop();
    const double sweep_s = seconds_since(sweep_start);

    std::cout << "\n" << name << ": " << circuit.num_gates() << " gates, "
              << faults.size() << " collapsed faults, DP sweep "
              << analysis::TextTable::num(sweep_s, 3) << " s (--jobs "
              << jobs << ")\n";

    // Cumulative top-up: the n-detect set for n is the (n-1)-detect set
    // plus whatever the residuals still owe -- exactly how a test house
    // would grow an existing set.
    obs::ScopedTimer topup_timer = session.phase("topup." + name);
    const auto topup_start = Clock::now();
    std::vector<std::vector<bool>> vectors;
    std::size_t minted_total = 0;
    for (std::size_t n = 1; n <= max_n; ++n) {
      minted_total += analyzer.top_up(vectors, n);
      const double s = seconds_since(topup_start);
      session.metrics().gauge("ndetect." + name + ".n" + std::to_string(n) +
                              ".vectors")
          .set(static_cast<double>(vectors.size()));
      analysis::write_csv_row(
          std::cout,
          {name, std::to_string(n), std::to_string(vectors.size()),
           std::to_string(minted_total), analysis::TextTable::num(s, 3)});
    }
    topup_timer.stop();

    analysis::NDetectReport report = analyzer.report(vectors, max_n);
    report.minted_vectors = minted_total;
    all_complete = all_complete && report.complete();

    // Independent recount: the wide simulator grades the same vectors
    // (duplicate-free by construction) and every per-fault count must
    // equal the satcount exactly.
    const sim::WideFaultSimulator wide(circuit);
    sim::WideFaultSimulator::Options wopt;
    wopt.drop_detected = false;
    const auto regrade = wide.grade_vectors(faults, vectors, wopt);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (regrade.detection_counts[i] != report.faults[i].detections) {
        ++mismatches;
      }
    }
    all_exact = all_exact && mismatches == 0;
    std::cout << name << ": " << vectors.size() << " vectors at n=" << max_n
              << " (" << minted_total << " minted), mean CTS coverage "
              << analysis::TextTable::num(report.mean_cts_coverage(), 6)
              << ", sim recount mismatches " << mismatches << "\n";

    const double total_s = sweep_s + seconds_since(topup_start);
    session.record_engine(circuit.name(), circuit.num_gates(),
                          circuit.num_inputs(), circuit.num_outputs(),
                          faults.size(),
                          total_s > 0 ? faults.size() / total_s : 0.0,
                          analyzer.stats());
  }

  bench::shape_check(all_complete,
                     "every detectable fault reaches min(n, |CTS|) "
                     "detections at n=" + std::to_string(max_n));
  bench::shape_check(all_exact,
                     "simulator recounts equal DP satcounts exactly on "
                     "every circuit");
  return all_complete && all_exact ? 0 : 1;
}
